/**
 * @file
 * Serving-subsystem tests (DESIGN.md §10): protocol parsing, request
 * canonicalization, and the service/server behaviors the issue pins
 * down — cold/cached/direct byte-identity, single-flight dedup,
 * bounded admission with structured shedding, fingerprint
 * invalidation, and an 8-client socket smoke.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "harness/experiment.hh"
#include "harness/result_cache.hh"
#include "harness/tenant_sweep.hh"
#include "serve/client.hh"
#include "serve/service/protocol.hh"
#include "serve/service/service.hh"
#include "serve/service/service_handler.hh"
#include "serve/service/sim_request.hh"
#include "serve/session/server.hh"
#include "sim/config_loader.hh"
#include "sim/presets.hh"
#include "tenant/mixes.hh"
#include "tenant/tenant_manager.hh"
#include "workloads/registry.hh"

using namespace laperm;
using namespace laperm::serve;

namespace {

std::string
tempDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "laperm_serve_" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** Tiny-scale request every service test uses; seed varies identity. */
SimRequest
tinyRequest(std::uint64_t seed)
{
    SimRequest req;
    req.workload = "bfs-cage";
    req.scale = Scale::Tiny;
    req.seed = seed;
    req.cfg = paperConfig();
    req.cfg.dynParModel = req.model;
    req.cfg.tbPolicy = req.policy;
    req.cfg.seed = seed;
    return req;
}

/** The payload a direct (daemon-free) run of @p req produces. */
std::string
directPayload(const SimRequest &req)
{
    auto w = createWorkload(req.workload);
    w->setup(req.scale, req.seed);
    return runOneRecord(*w, req.cfg, std::string()).encode();
}

ServiceOptions
testServiceOptions(const std::string &cacheDir)
{
    ServiceOptions o;
    o.jobs = 2;
    o.cacheDir = cacheDir;
    o.fingerprint = "fp-test";
    return o;
}

bool
waitFor(const std::function<bool()> &pred, int deadlineMs = 10000)
{
    for (int i = 0; i < deadlineMs; ++i) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return pred();
}

} // namespace

// ---------------------------------------------------------------- protocol

TEST(ServeProtocol, ParsesFlatObjects)
{
    JsonObject obj;
    std::string err;
    ASSERT_TRUE(parseJsonObject(
        R"({"op":"run","seed":42,"b":true,"n":null,"s":"a\"b\n"})", obj,
        err))
        << err;
    EXPECT_EQ(obj.size(), 5u);
    std::string s;
    EXPECT_TRUE(getString(obj, "op", s));
    EXPECT_EQ(s, "run");
    std::uint64_t v = 0;
    EXPECT_TRUE(getU64(obj, "seed", v));
    EXPECT_EQ(v, 42u);
    EXPECT_TRUE(getString(obj, "s", s));
    EXPECT_EQ(s, "a\"b\n");
    EXPECT_EQ(obj.at("b").type, JsonValue::Type::Bool);
    EXPECT_TRUE(obj.at("b").boolean);
    EXPECT_EQ(obj.at("n").type, JsonValue::Type::Null);
}

TEST(ServeProtocol, RejectsNonFlatAndMalformed)
{
    JsonObject obj;
    std::string err;
    EXPECT_FALSE(parseJsonObject(R"({"a":{"b":1}})", obj, err));
    EXPECT_FALSE(parseJsonObject(R"({"a":[1]})", obj, err));
    EXPECT_FALSE(parseJsonObject(R"({"a":1,"a":2})", obj, err));
    EXPECT_FALSE(parseJsonObject(R"({"a":1} junk)", obj, err));
    EXPECT_FALSE(parseJsonObject("not json", obj, err));
    EXPECT_FALSE(parseJsonObject("", obj, err));
    EXPECT_FALSE(parseJsonObject(R"({"a":1)", obj, err));
}

TEST(ServeProtocol, U64RejectsNonIntegers)
{
    JsonObject obj;
    std::string err;
    ASSERT_TRUE(parseJsonObject(
        R"({"neg":-1,"frac":1.5,"exp":1e3,"str":"7","ok":7})", obj, err))
        << err;
    std::uint64_t v = 0;
    EXPECT_FALSE(getU64(obj, "neg", v));
    EXPECT_FALSE(getU64(obj, "frac", v));
    EXPECT_FALSE(getU64(obj, "exp", v));
    EXPECT_FALSE(getU64(obj, "str", v));
    EXPECT_FALSE(getU64(obj, "missing", v));
    EXPECT_TRUE(getU64(obj, "ok", v));
    EXPECT_EQ(v, 7u);
}

TEST(ServeProtocol, EscapeRoundTrips)
{
    const std::string raw = "line1\nline2\t\"quoted\" \\slash\\";
    JsonObject obj;
    std::string err;
    ASSERT_TRUE(parseJsonObject("{\"s\":\"" + jsonEscape(raw) + "\"}",
                                obj, err))
        << err;
    std::string back;
    ASSERT_TRUE(getString(obj, "s", back));
    EXPECT_EQ(back, raw);
}

// ------------------------------------------------------------- sim request

TEST(ServeRequest, DefaultsMaterializeSoEquivalentRequestsShareAKey)
{
    JsonObject sparse, full;
    std::string err;
    ASSERT_TRUE(parseJsonObject(R"({"op":"run"})", sparse, err));
    SimRequest a;
    ASSERT_TRUE(SimRequest::fromJson(sparse, a, err)) << err;

    // The same simulation, every default spelled out.
    ASSERT_TRUE(parseJsonObject(a.toJson(), full, err)) << err;
    SimRequest b;
    ASSERT_TRUE(SimRequest::fromJson(full, b, err)) << err;
    EXPECT_EQ(a.canonical(), b.canonical());
    EXPECT_EQ(a.key(), b.key());

    SimRequest c = a;
    c.seed = a.seed + 1;
    EXPECT_NE(a.key(), c.key());
}

TEST(ServeRequest, RejectsUnknownFieldsAndBadValues)
{
    JsonObject obj;
    std::string err;
    ASSERT_TRUE(parseJsonObject(R"({"op":"run","workloat":"x"})", obj,
                                err));
    SimRequest r;
    EXPECT_FALSE(SimRequest::fromJson(obj, r, err));
    EXPECT_NE(err.find("workloat"), std::string::npos);

    ASSERT_TRUE(
        parseJsonObject(R"({"op":"run","model":"sideways"})", obj, err));
    EXPECT_FALSE(SimRequest::fromJson(obj, r, err));

    ASSERT_TRUE(parseJsonObject(R"({"op":"run","seed":-3})", obj, err));
    EXPECT_FALSE(SimRequest::fromJson(obj, r, err));
}

TEST(ServeRequest, PresetAndInlineConfigSpellingsShareAKey)
{
    // The same v100 machine, three spellings: the preset name, the
    // full emitted TOML, and the preset request round-tripped through
    // its own wire form. All must canonicalize to one cache key.
    JsonObject obj;
    std::string err;
    ASSERT_TRUE(
        parseJsonObject(R"({"op":"run","preset":"v100"})", obj, err));
    SimRequest byPreset;
    ASSERT_TRUE(SimRequest::fromJson(obj, byPreset, err)) << err;

    const std::string toml = emitMachineToml(presetConfig("v100"));
    ASSERT_TRUE(parseJsonObject(
        R"({"op":"run","config":")" + jsonEscape(toml) + "\"}", obj,
        err))
        << err;
    SimRequest byToml;
    ASSERT_TRUE(SimRequest::fromJson(obj, byToml, err)) << err;

    ASSERT_TRUE(parseJsonObject(byPreset.toJson(), obj, err)) << err;
    SimRequest byWire;
    ASSERT_TRUE(SimRequest::fromJson(obj, byWire, err)) << err;

    EXPECT_EQ(byPreset.canonical(), byToml.canonical());
    EXPECT_EQ(byPreset.key(), byToml.key());
    EXPECT_EQ(byPreset.key(), byWire.key());

    // ...and a default-machine request keys differently.
    ASSERT_TRUE(parseJsonObject(R"({"op":"run"})", obj, err));
    SimRequest k20c;
    ASSERT_TRUE(SimRequest::fromJson(obj, k20c, err)) << err;
    EXPECT_NE(k20c.key(), byPreset.key());
}

TEST(ServeRequest, ConfigOverlaysPresetAndShortcutsOverlayConfig)
{
    // Documented precedence: preset, then config TOML, then the
    // legacy shortcut fields — regardless of JSON key order.
    JsonObject obj;
    std::string err;
    ASSERT_TRUE(parseJsonObject(
        R"({"op":"run","smx":4,"preset":"v100","config":"l2_banks = 4\n"})",
        obj, err));
    SimRequest r;
    ASSERT_TRUE(SimRequest::fromJson(obj, r, err)) << err;
    EXPECT_EQ(r.cfg.numSmx, 4u);         // shortcut wins over preset
    EXPECT_EQ(r.cfg.l2Banks, 4u);        // config TOML applied
    EXPECT_EQ(r.cfg.l2Size, 6144u * 1024u); // rest is still v100
}

TEST(ServeRequest, BadPresetAndBadConfigAreStructuredErrors)
{
    JsonObject obj;
    std::string err;
    SimRequest r;

    ASSERT_TRUE(parseJsonObject(R"({"op":"run","preset":"k40"})", obj,
                                err));
    EXPECT_FALSE(SimRequest::fromJson(obj, r, err));
    EXPECT_NE(err.find("k20c"), std::string::npos) << err; // names list

    ASSERT_TRUE(parseJsonObject(
        R"({"op":"run","config":"warp_count = 9\n"})", obj, err));
    EXPECT_FALSE(SimRequest::fromJson(obj, r, err));
    EXPECT_NE(err.find("config"), std::string::npos) << err;
    EXPECT_NE(err.find("warp_count"), std::string::npos) << err;
}

TEST(ServeRequest, ValidateCatchesSemanticErrors)
{
    SimRequest r = tinyRequest(1);
    std::string err;
    EXPECT_TRUE(r.validate(err)) << err;

    r.workload = "no-such-workload";
    EXPECT_FALSE(r.validate(err));
    EXPECT_NE(err.find("no-such-workload"), std::string::npos);

    r = tinyRequest(1);
    r.cfg.numSmx = 0;
    EXPECT_FALSE(r.validate(err));
}

TEST(ServeRequest, TenantsFieldRoundTripsAndExtendsTheKey)
{
    JsonObject obj;
    std::string err;
    ASSERT_TRUE(parseJsonObject(R"({"op":"run","tenants":"duo"})", obj,
                                err));
    SimRequest mix;
    ASSERT_TRUE(SimRequest::fromJson(obj, mix, err)) << err;
    EXPECT_EQ(mix.tenants, "duo");
    ASSERT_TRUE(mix.validate(err)) << err;

    // The canonical form names the mix and the preset label (the TSV
    // payload carries a preset column, so the label is identity)...
    EXPECT_NE(mix.canonical().find("tenants=duo tpreset=k20c"),
              std::string::npos)
        << mix.canonical();
    // ...while a plain request's canonical bytes stay exactly as
    // before the field existed — pre-existing cache keys must survive.
    ASSERT_TRUE(parseJsonObject(R"({"op":"run"})", obj, err));
    SimRequest plain;
    ASSERT_TRUE(SimRequest::fromJson(obj, plain, err)) << err;
    EXPECT_EQ(plain.canonical().find("tenants="), std::string::npos);
    EXPECT_NE(plain.key(), mix.key());

    // Wire round trip preserves the key; mix and preset vary it.
    ASSERT_TRUE(parseJsonObject(mix.toJson(), obj, err)) << err;
    SimRequest back;
    ASSERT_TRUE(SimRequest::fromJson(obj, back, err)) << err;
    EXPECT_EQ(back.key(), mix.key());

    ASSERT_TRUE(parseJsonObject(
        R"({"op":"run","tenants":"quad"})", obj, err));
    SimRequest quad;
    ASSERT_TRUE(SimRequest::fromJson(obj, quad, err)) << err;
    EXPECT_NE(quad.key(), mix.key());

    ASSERT_TRUE(parseJsonObject(
        R"({"op":"run","tenants":"duo","preset":"v100"})", obj, err));
    SimRequest onV100;
    ASSERT_TRUE(SimRequest::fromJson(obj, onV100, err)) << err;
    EXPECT_NE(onV100.key(), mix.key());
}

TEST(ServeRequest, TenantsValidationRejectsUnknownMixAndTraceDir)
{
    JsonObject obj;
    std::string err;
    ASSERT_TRUE(parseJsonObject(
        R"({"op":"run","tenants":"nonsuch"})", obj, err));
    SimRequest r;
    ASSERT_TRUE(SimRequest::fromJson(obj, r, err)) << err;
    EXPECT_FALSE(r.validate(err));
    EXPECT_NE(err.find("nonsuch"), std::string::npos) << err;
    EXPECT_NE(err.find("duo"), std::string::npos) << err; // names list

    ASSERT_TRUE(parseJsonObject(
        R"({"op":"run","tenants":"duo","trace_dir":"/tmp/t"})", obj,
        err));
    ASSERT_TRUE(SimRequest::fromJson(obj, r, err)) << err;
    EXPECT_FALSE(r.validate(err));
    EXPECT_NE(err.find("trace_dir"), std::string::npos) << err;
}

// ---------------------------------------------------------------- service

TEST(ServeService, ColdCachedAndDirectResultsAreByteIdentical)
{
    const SimRequest req = tinyRequest(7);
    const std::string direct = directPayload(req);

    SimService svc(testServiceOptions(tempDir("identity")));
    const RunOutcome cold = svc.run(req);
    ASSERT_EQ(cold.status, RunStatus::Ok) << cold.error;
    EXPECT_FALSE(cold.cached);
    EXPECT_EQ(cold.payload, direct);

    const RunOutcome warm = svc.run(req);
    ASSERT_EQ(warm.status, RunStatus::Ok) << warm.error;
    EXPECT_TRUE(warm.cached);
    EXPECT_EQ(warm.payload, direct);

    // And the rendered CSV row matches what laperm_sim --csv prints.
    ResultRecord recDirect, recServed;
    ASSERT_TRUE(ResultRecord::decode(direct, recDirect));
    ASSERT_TRUE(ResultRecord::decode(warm.payload, recServed));
    EXPECT_EQ(recDirect.csvRow(), recServed.csvRow());

    const ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.executed, 1u);
    EXPECT_EQ(m.cacheMisses, 1u);
    EXPECT_EQ(m.cacheHits, 1u);
}

TEST(ServeService, TenantMixPayloadMatchesADirectMixStudy)
{
    // A tenants request serves the same TSV laperm_sim --tenants MIX
    // --tenants-tsv writes: reconstruct it from a direct runMixStudy
    // with the identical row mapping and byte-compare.
    SimRequest req;
    req.tenants = "duo";
    req.cfg = paperConfig();
    req.cfg.dynParModel = req.model;
    req.cfg.tbPolicy = req.policy;
    std::string err;
    ASSERT_TRUE(req.validate(err)) << err;

    const tenant::MixSpec mix = tenant::builtinMix(req.tenants);
    const tenant::MixStudy study = tenant::runMixStudy(mix, req.cfg);
    std::vector<TenantSweepRow> rows;
    for (const tenant::TenantMetrics &tm : study.metrics.perTenant) {
        TenantSweepRow r;
        r.mix = mix.name;
        r.preset = req.presetName;
        r.policy = req.cfg.tbPolicy;
        r.tenant = tm.name;
        r.tenantId = tm.tenant;
        r.jobs = tm.jobs;
        r.antt = tm.antt;
        r.p50 = tm.p50;
        r.p95 = tm.p95;
        r.p99 = tm.p99;
        r.retiredTbs = tm.retiredTbs;
        r.mixAntt = study.metrics.antt;
        r.mixStp = study.metrics.stp;
        r.mixJain = study.metrics.jain;
        r.makespan = study.metrics.makespan;
        rows.push_back(std::move(r));
    }
    const std::string direct = encodeTenantSweepTsv(rows);

    SimService svc(testServiceOptions(tempDir("tenant_mix")));
    const RunOutcome cold = svc.run(req);
    ASSERT_EQ(cold.status, RunStatus::Ok) << cold.error;
    EXPECT_FALSE(cold.cached);
    EXPECT_EQ(cold.payload, direct);

    const RunOutcome warm = svc.run(req);
    ASSERT_EQ(warm.status, RunStatus::Ok) << warm.error;
    EXPECT_TRUE(warm.cached);
    EXPECT_EQ(warm.payload, direct);
}

TEST(ServeService, CacheHitMetricsDistinguishMemoryAndSharedTiers)
{
    const std::string dir = tempDir("tier_metrics");
    const SimRequest req = tinyRequest(71);
    {
        SimService svc(testServiceOptions(dir));
        ASSERT_EQ(svc.run(req).status, RunStatus::Ok);
        const RunOutcome warm = svc.run(req);
        ASSERT_EQ(warm.status, RunStatus::Ok);
        EXPECT_TRUE(warm.cached);
        const ServiceMetrics m = svc.metrics();
        EXPECT_EQ(m.cacheHits, 1u);
        EXPECT_EQ(m.cacheMemHits, 1u);
        EXPECT_EQ(m.cacheSharedHits, 0u);
    }
    {
        // A fresh service on the same cache dir models another worker
        // (or a restarted one): its hit comes off the shared tier.
        SimService svc(testServiceOptions(dir));
        const RunOutcome hit = svc.run(req);
        ASSERT_EQ(hit.status, RunStatus::Ok) << hit.error;
        EXPECT_TRUE(hit.cached);
        ServiceMetrics m = svc.metrics();
        EXPECT_EQ(m.executed, 0u);
        EXPECT_EQ(m.cacheSharedHits, 1u);
        EXPECT_EQ(m.cacheMemHits, 0u);

        // dropMemoryCache (what a worker restart does to L1) sends the
        // NEXT hit back to the shared tier; a hit after that is L1.
        svc.dropMemoryCache();
        ASSERT_EQ(svc.run(req).status, RunStatus::Ok);
        EXPECT_EQ(svc.metrics().cacheSharedHits, 2u);
        ASSERT_EQ(svc.run(req).status, RunStatus::Ok);
        m = svc.metrics();
        EXPECT_EQ(m.cacheSharedHits, 2u);
        EXPECT_EQ(m.cacheMemHits, 1u);
    }
}

TEST(ServeService, IdenticalInFlightRequestsAreSingleFlighted)
{
    ServiceOptions opts = testServiceOptions(tempDir("dedup"));
    opts.testExecDelayMs = 100;
    SimService svc(opts);

    const SimRequest req = tinyRequest(11);
    RunOutcome a, b;
    std::thread ta([&] { a = svc.run(req); });
    std::thread tb([&] { b = svc.run(req); });
    ta.join();
    tb.join();

    ASSERT_EQ(a.status, RunStatus::Ok) << a.error;
    ASSERT_EQ(b.status, RunStatus::Ok) << b.error;
    EXPECT_EQ(a.payload, b.payload);
    const ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.executed, 1u); // one simulation served both callers
    EXPECT_EQ(m.deduped, 1u);
    EXPECT_TRUE(a.deduped || b.deduped);
}

TEST(ServeService, AdmissionBoundShedsInsteadOfQueueingUnbounded)
{
    ServiceOptions opts = testServiceOptions(tempDir("shed"));
    opts.jobs = 1;
    opts.queueCapacity = 1;
    opts.testExecDelayMs = 300;
    SimService svc(opts);

    RunOutcome slow;
    std::thread occupant([&] { slow = svc.run(tinyRequest(21)); });
    ASSERT_TRUE(
        waitFor([&] { return svc.metrics().queueDepth == 1; }));

    const RunOutcome rejected = svc.run(tinyRequest(22));
    EXPECT_EQ(rejected.status, RunStatus::Shed);
    EXPECT_TRUE(rejected.payload.empty());
    occupant.join();
    ASSERT_EQ(slow.status, RunStatus::Ok) << slow.error;

    const ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.shed, 1u);
    EXPECT_EQ(m.executed, 1u);
    EXPECT_EQ(m.queueDepthPeak, 1u);
}

TEST(ServeService, WaiterTimeoutDoesNotAbortExecution)
{
    ServiceOptions opts = testServiceOptions(tempDir("timeout"));
    opts.timeoutMs = 1;
    opts.testExecDelayMs = 100;
    SimService svc(opts);

    const SimRequest req = tinyRequest(31);
    const RunOutcome out = svc.run(req);
    EXPECT_EQ(out.status, RunStatus::Timeout);

    // The execution keeps going and still populates the cache.
    ASSERT_TRUE(waitFor([&] { return svc.metrics().executed == 1; }));
    ASSERT_TRUE(
        waitFor([&] { return svc.metrics().cacheMisses == 1; }));
    const RunOutcome retry = svc.run(req);
    ASSERT_EQ(retry.status, RunStatus::Ok) << retry.error;
    EXPECT_TRUE(retry.cached);
    EXPECT_EQ(retry.payload, directPayload(req));
}

TEST(ServeService, FingerprintBumpInvalidatesCachedResults)
{
    const std::string dir = tempDir("fp_bump");
    const SimRequest req = tinyRequest(41);

    ServiceOptions oldBuild = testServiceOptions(dir);
    oldBuild.fingerprint = "fp-old";
    {
        SimService svc(oldBuild);
        const RunOutcome out = svc.run(req);
        ASSERT_EQ(out.status, RunStatus::Ok) << out.error;
        EXPECT_FALSE(out.cached);
    }
    {
        // Same cache directory, new simulator build: must re-execute.
        ServiceOptions newBuild = testServiceOptions(dir);
        newBuild.fingerprint = "fp-new";
        SimService svc(newBuild);
        const RunOutcome out = svc.run(req);
        ASSERT_EQ(out.status, RunStatus::Ok) << out.error;
        EXPECT_FALSE(out.cached);
        EXPECT_EQ(svc.metrics().executed, 1u);
    }
    {
        // The re-execution overwrote the entry under the new
        // fingerprint: new builds now hit, the old build misses again.
        ServiceOptions newBuild = testServiceOptions(dir);
        newBuild.fingerprint = "fp-new";
        SimService svc(newBuild);
        const RunOutcome out = svc.run(req);
        ASSERT_EQ(out.status, RunStatus::Ok) << out.error;
        EXPECT_TRUE(out.cached);
    }
    {
        SimService svc(oldBuild);
        const RunOutcome out = svc.run(req);
        ASSERT_EQ(out.status, RunStatus::Ok) << out.error;
        EXPECT_FALSE(out.cached);
    }
}

TEST(ServeService, InvalidRequestsErrorWithoutExecuting)
{
    SimService svc(testServiceOptions(tempDir("invalid")));
    SimRequest req = tinyRequest(51);
    req.workload = "no-such-workload";
    const RunOutcome out = svc.run(req);
    EXPECT_EQ(out.status, RunStatus::Error);
    EXPECT_NE(out.error.find("no-such-workload"), std::string::npos);
    const ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.errors, 1u);
    EXPECT_EQ(m.executed, 0u);
}

// ----------------------------------------------------------------- server

TEST(ServeServer, HandleLineDispatchesAndSurvivesBadInput)
{
    // handleLine needs no socket: the service handler is the whole
    // brain, the session layer only feeds it frames.
    ServiceHandler handler(testServiceOptions(tempDir("dispatch")));

    JsonObject resp;
    std::string err, s;

    // Malformed / unknown inputs produce structured errors, not exits.
    for (const char *bad :
         {"garbage", "{\"seed\":1}", R"({"op":"fly"})",
          R"({"op":"run","bogus_field":1})",
          R"({"op":"run","workload":"no-such-workload"})"}) {
        ASSERT_TRUE(parseJsonObject(handler.handleLine(bad), resp, err))
            << err;
        ASSERT_TRUE(getString(resp, "status", s));
        EXPECT_EQ(s, kStatusError) << bad;
    }

    // ...and the very same handler still answers real requests.
    ASSERT_TRUE(parseJsonObject(handler.handleLine(R"({"op":"ping"})"),
                                resp, err))
        << err;
    ASSERT_TRUE(getString(resp, "status", s));
    EXPECT_EQ(s, kStatusOk);
    ASSERT_TRUE(getString(resp, "fingerprint", s));
    EXPECT_EQ(s, "fp-test");
    std::uint64_t proto = 0;
    ASSERT_TRUE(getU64(resp, "protocol", proto));
    EXPECT_EQ(proto, static_cast<std::uint64_t>(kProtocolVersion));

    ASSERT_TRUE(parseJsonObject(handler.handleLine(R"({"op":"stats"})"),
                                resp, err))
        << err;
    std::uint64_t n = 0;
    ASSERT_TRUE(getU64(resp, "errors", n));
    EXPECT_EQ(n, 1u); // only the semantically-invalid run counted
}

TEST(ServeServer, EightConcurrentClientsAllGetByteIdenticalResults)
{
    const std::string sockPath =
        ::testing::TempDir() + "laperm_smoke.sock";
    SessionOptions opts;
    opts.endpoint = Endpoint::unixAt(sockPath);
    ServiceHandler handler(testServiceOptions(tempDir("smoke")));
    Server server(opts, handler);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    constexpr int kClients = 8;
    std::vector<std::string> payloads(kClients);
    std::vector<std::string> errors(kClients);
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i) {
        clients.emplace_back([&, i] {
            ClientOptions copts;
            copts.endpoint = opts.endpoint;
            Client client(copts);
            std::string cerr;
            if (!client.connect(cerr)) {
                errors[static_cast<std::size_t>(i)] = cerr;
                return;
            }
            // Half the clients share seed 1 (exercises dedup/cache
            // under concurrency); the rest are distinct simulations.
            const SimRequest req = tinyRequest(
                i < kClients / 2 ? 1 : static_cast<std::uint64_t>(i));
            JsonObject resp;
            if (!client.callWithRetry(req.toJson(), resp, cerr)) {
                errors[static_cast<std::size_t>(i)] = cerr;
                return;
            }
            std::string status;
            getString(resp, "status", status);
            if (status != kStatusOk) {
                errors[static_cast<std::size_t>(i)] =
                    "status=" + status;
                return;
            }
            getString(resp, "result",
                      payloads[static_cast<std::size_t>(i)]);
        });
    }
    for (auto &t : clients)
        t.join();

    for (int i = 0; i < kClients; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        EXPECT_TRUE(errors[idx].empty()) << "client " << i << ": "
                                         << errors[idx];
        ASSERT_FALSE(payloads[idx].empty()) << "client " << i;
    }
    // Shared-seed clients converge on one set of bytes, equal to the
    // daemon-free run.
    const std::string direct = directPayload(tinyRequest(1));
    for (int i = 0; i < kClients / 2; ++i)
        EXPECT_EQ(payloads[static_cast<std::size_t>(i)], direct);

    // Shutdown over the protocol terminates the wait loop.
    {
        ClientOptions copts;
        copts.endpoint = opts.endpoint;
        Client client(copts);
        ASSERT_TRUE(client.connect(err)) << err;
        JsonObject resp;
        ASSERT_TRUE(client.call(R"({"op":"shutdown"})", resp, err))
            << err;
        std::string status;
        ASSERT_TRUE(getString(resp, "status", status));
        EXPECT_EQ(status, kStatusOk);
    }
    EXPECT_TRUE(server.waitShutdown(10000));
    server.stop();
    EXPECT_FALSE(std::filesystem::exists(sockPath));
}

TEST(ServeServer, OverloadIsStructuredAndRetryRecovers)
{
    SessionOptions opts;
    opts.endpoint =
        Endpoint::unixAt(::testing::TempDir() + "laperm_overload.sock");
    ServiceOptions svcOpts = testServiceOptions(tempDir("overload"));
    svcOpts.jobs = 1;
    svcOpts.queueCapacity = 1;
    svcOpts.testExecDelayMs = 300;
    ServiceHandler handler(std::move(svcOpts));
    Server server(opts, handler);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    // Occupy the single admission slot.
    std::string slowStatus;
    std::thread occupant([&] {
        ClientOptions copts;
        copts.endpoint = opts.endpoint;
        Client client(copts);
        std::string cerr;
        JsonObject resp;
        if (client.connect(cerr) &&
            client.call(tinyRequest(61).toJson(), resp, cerr)) {
            getString(resp, "status", slowStatus);
        }
    });
    ASSERT_TRUE(waitFor(
        [&] { return handler.service().metrics().queueDepth == 1; }));

    // A no-retry client sees the structured overload response...
    {
        ClientOptions copts;
        copts.endpoint = opts.endpoint;
        copts.overloadRetries = 0;
        Client client(copts);
        ASSERT_TRUE(client.connect(err)) << err;
        JsonObject resp;
        ASSERT_TRUE(client.call(tinyRequest(62).toJson(), resp, err))
            << err;
        std::string status;
        ASSERT_TRUE(getString(resp, "status", status));
        EXPECT_EQ(status, kStatusOverloaded);
        std::uint64_t retryMs = 0;
        EXPECT_TRUE(getU64(resp, "retry_ms", retryMs));
        EXPECT_GT(retryMs, 0u);
    }

    // ...and a retrying client rides out the overload window.
    {
        ClientOptions copts;
        copts.endpoint = opts.endpoint;
        copts.overloadRetries = 20;
        copts.backoffMs = 50;
        Client client(copts);
        ASSERT_TRUE(client.connect(err)) << err;
        JsonObject resp;
        ASSERT_TRUE(
            client.callWithRetry(tinyRequest(63).toJson(), resp, err))
            << err;
        std::string status;
        ASSERT_TRUE(getString(resp, "status", status));
        EXPECT_EQ(status, kStatusOk);
    }

    occupant.join();
    EXPECT_EQ(slowStatus, kStatusOk);
    EXPECT_GE(handler.service().metrics().shed, 1u);
    server.stop();
}
