# Empty compiler generated dependencies file for bench_fig7_l2_hitrate.
# This may be replaced when dependencies are built.
