/**
 * @file
 * A small fixed-size thread pool for the sweep executor. Jobs are
 * plain std::function<void()>; wait() blocks until the pool is idle
 * and rethrows the first exception any job raised, so callers keep
 * fail-fast semantics under parallelism.
 */

#ifndef LAPERM_HARNESS_THREAD_POOL_HH
#define LAPERM_HARNESS_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace laperm {

/**
 * Fixed worker count, FIFO queue. The pool itself guarantees nothing
 * about execution order; deterministic output is the caller's job
 * (the sweep executor writes each result to a preassigned index).
 */
class ThreadPool
{
  public:
    /** Spawn @p num_threads workers (clamped to at least one). */
    explicit ThreadPool(unsigned num_threads);

    /** Drains remaining jobs, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job. Safe to call from any thread, including jobs. */
    void submit(std::function<void()> job);

    /**
     * Block until every submitted job has finished. If any job threw,
     * rethrows the first captured exception (the pool stays usable).
     */
    void wait();

    unsigned numThreads() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /**
     * Worker count selected by the LAPERM_JOBS environment variable;
     * falls back to std::thread::hardware_concurrency() (min 1).
     */
    static unsigned defaultJobs();

  private:
    void workerLoop();

    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable workCv_; ///< workers sleep here
    std::condition_variable idleCv_; ///< wait() sleeps here
    std::size_t inFlight_ = 0;       ///< queued + currently running
    bool stop_ = false;
    std::exception_ptr firstError_;
};

} // namespace laperm

#endif // LAPERM_HARNESS_THREAD_POOL_HH
