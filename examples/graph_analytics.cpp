/**
 * @file
 * Graph-analytics scenario: run BFS and SSSP over the three graph
 * inputs of Table II under all four TB schedulers (DTBL model) and
 * print the speedup of each LaPerm stage over round-robin — the
 * workloads the paper's introduction motivates.
 *
 * Run: ./graph_analytics [tiny|small|full]
 */

#include <cstdio>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/table.hh"
#include "workloads/registry.hh"

using namespace laperm;

int
main(int argc, char **argv)
{
    setVerbose(false);
    Scale scale = argc > 1 ? scaleFromString(argv[1])
                           : scaleFromEnv(Scale::Tiny);

    const char *names[] = {"bfs-citation", "bfs-graph500", "bfs-cage",
                           "sssp-citation", "sssp-graph500", "sssp-cage"};

    std::printf("Graph analytics under dynamic parallelism (DTBL, "
                "scale '%s')\nIPC normalized to the round-robin "
                "baseline:\n\n",
                toString(scale));

    Table table({"workload", "RR", "TB-Pri", "SMX-Bind", "Adaptive-Bind",
                 "L1 hit (RR)", "L1 hit (LaPerm)"});
    for (const char *name : names) {
        auto workload = createWorkload(name);
        workload->setup(scale, 1);

        double rr_ipc = 0.0;
        std::vector<std::string> row = {name};
        double rr_l1 = 0.0, laperm_l1 = 0.0;
        for (TbPolicy policy : {TbPolicy::RR, TbPolicy::TbPri,
                                TbPolicy::SmxBind,
                                TbPolicy::AdaptiveBind}) {
            GpuConfig cfg = paperConfig();
            cfg.dynParModel = DynParModel::DTBL;
            cfg.tbPolicy = policy;
            RunResult r = runOne(*workload, cfg);
            if (policy == TbPolicy::RR) {
                rr_ipc = r.ipc;
                rr_l1 = r.l1HitRate;
            }
            if (policy == TbPolicy::AdaptiveBind)
                laperm_l1 = r.l1HitRate;
            row.push_back(fmtF(rr_ipc > 0 ? r.ipc / rr_ipc : 0.0));
        }
        row.push_back(fmtPct(rr_l1));
        row.push_back(fmtPct(laperm_l1));
        table.addRow(std::move(row));
    }
    table.print();
    return 0;
}
