/**
 * @file
 * Locality-attribution counters: classify every L1/L2 cache hit by the
 * TB relationship between the hitting TB and the previous toucher of
 * the line — the reuse classes the paper's Section III argues LaPerm
 * exploits (parent-child, child-sibling) versus plain self reuse.
 */

#ifndef LAPERM_OBS_LOCALITY_HH
#define LAPERM_OBS_LOCALITY_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "sim/observer.hh"

namespace laperm {
namespace obs {

/** Reuse relationship between a hit and the line's previous toucher. */
enum class ReuseClass : std::uint8_t
{
    Self,    ///< the same TB touched the line before
    Parent,  ///< the accessor's direct parent touched it (parent-line reuse)
    Child,   ///< a direct child of the accessor touched it
    Sibling, ///< a TB sharing the accessor's direct parent touched it
    Other,   ///< any other TB (incl. unrelated host TBs)
};

constexpr std::uint32_t kNumReuseClasses = 5;

const char *toString(ReuseClass c);

/** Per-cache-level hit counters, one per ReuseClass. */
struct LocalityCounters
{
    std::uint64_t byClass[kNumReuseClasses] = {};

    std::uint64_t count(ReuseClass c) const
    {
        return byClass[static_cast<std::uint32_t>(c)];
    }

    /** Sum over all classes; equals the level's CacheStats::hits. */
    std::uint64_t total() const
    {
        std::uint64_t t = 0;
        for (std::uint64_t v : byClass)
            t += v;
        return t;
    }
};

/**
 * The tracker the memory system feeds. Maintains a per-cache-instance
 * "last toucher" record per 128B line (independent of residency — the
 * relationship is between access streams, not tag state) and counts
 * each hit under the accessor/toucher relationship.
 *
 * Pure observation: it never influences timing, and when no tracker is
 * attached the memory system skips all of this. The maps are only ever
 * point-looked-up, never iterated, so bucket order cannot leak into
 * any output.
 *
 * Implements the MemObserver interface the memory system publishes
 * through (sim/observer.hh) — the engine never sees this class.
 */
class LocalityTracker : public MemObserver
{
  public:
    explicit LocalityTracker(std::uint32_t num_l1);

    /** Record an L1 access; counts a hit into its reuse class. */
    void onL1Access(std::uint32_t l1_index, Addr line, bool hit,
                    const MemAccessor &who) override;

    /** Record an L2 access; counts a hit into its reuse class. */
    void onL2Access(Addr line, bool hit, const MemAccessor &who) override;

    /** Aggregated over all L1 instances. */
    const LocalityCounters &l1() const { return l1_; }
    const LocalityCounters &l2() const { return l2_; }

    /**
     * Write "level class hits share" rows (TSV, deterministic order).
     * @return false if the file could not be opened.
     */
    bool writeTsv(const std::string &path) const;

  private:
    struct Toucher
    {
        TbUid uid = kNoTb;
        TbUid parent = kNoTb;
    };
    using LineMap = std::unordered_map<Addr, Toucher>;

    static ReuseClass classify(const Toucher &prev,
                               const MemAccessor &who);
    void account(LineMap &lines, LocalityCounters &counters, Addr line,
                 bool hit, const MemAccessor &who);

    std::vector<LineMap> l1Lines_;
    LineMap l2Lines_;
    LocalityCounters l1_;
    LocalityCounters l2_;
};

} // namespace obs
} // namespace laperm

#endif // LAPERM_OBS_LOCALITY_HH
