/**
 * @file
 * The time-ordered event queue at the heart of the event-driven
 * simulator core (DESIGN.md §11): an integer-cycle min-heap whose pop
 * order is a pure function of the schedule, so event-mode runs are
 * byte-identical to the dense reference loop.
 */

#ifndef LAPERM_SIM_EVENT_QUEUE_HH
#define LAPERM_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace laperm {

/**
 * Component kinds, in intra-cycle phase order. The order mirrors one
 * dense Gpu::tick(): the front end (launcher admission + TB dispatch)
 * runs first, then the SMXs in ascending id order, then amortized
 * maintenance — so an event-mode cycle replays a dense cycle exactly.
 */
enum class SimEventKind : std::uint8_t
{
    FrontEnd = 0,    ///< Launcher::tick + TbScheduler::dispatchOne
    SmxTick = 1,     ///< one Smx::tick (id = SmxId)
    Maintenance = 2, ///< amortized MSHR trim (timing-invisible)
};

/** One scheduled wakeup. */
struct SimEvent
{
    Cycle cycle;
    SimEventKind kind;
    std::uint32_t id;  ///< component instance (SmxId for SmxTick)
    std::uint64_t seq; ///< insertion order; the final tie-break
};

/**
 * Min-heap of SimEvents keyed by (cycle, kind, id, seq). The composite
 * key makes pop order deterministic even when several components are
 * due at the same cycle: phases replay in dense-tick order, SMXs in
 * ascending id order, and equal keys in insertion order. seq is
 * assigned at schedule() time from a private counter, so two runs that
 * schedule the same events in the same order pop them identically.
 *
 * Invariant: no event may be scheduled in the past. schedule() asserts
 * cycle >= the cycle of the most recently popped event (same-cycle
 * scheduling is legal and used for same-cycle phase hand-offs, e.g.
 * dispatching a TB arms its SMX for the very cycle being processed).
 */
class EventQueue
{
  public:
    void schedule(Cycle cycle, SimEventKind kind, std::uint32_t id)
    {
        laperm_assert(cycle != kNoCycle, "scheduling the never-cycle");
        laperm_assert(cycle >= lastPop_,
                      "event scheduled in the past (%llu < %llu)",
                      static_cast<unsigned long long>(cycle),
                      static_cast<unsigned long long>(lastPop_));
        heap_.push_back({cycle, kind, id, nextSeq_++});
        std::push_heap(heap_.begin(), heap_.end(), After{});
    }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** The earliest event (undefined when empty). */
    const SimEvent &top() const
    {
        laperm_assert(!heap_.empty(), "top() on an empty event queue");
        return heap_.front();
    }

    /** Pop the earliest event; pops are monotone in cycle. */
    SimEvent pop()
    {
        laperm_assert(!heap_.empty(), "pop() on an empty event queue");
        std::pop_heap(heap_.begin(), heap_.end(), After{});
        SimEvent ev = heap_.back();
        heap_.pop_back();
        laperm_assert(ev.cycle >= lastPop_, "event-queue order violation");
        lastPop_ = ev.cycle;
        return ev;
    }

    /** Cycle of the most recently popped event (0 before any pop). */
    Cycle lastPopCycle() const { return lastPop_; }

    /**
     * Drop every pending event. Used when the device jumps forward over
     * an idle gap (Gpu::advanceTo): orphaned entries from the drained
     * run would otherwise surface as batch times in the past. lastPop_
     * is retained — the monotone-pop invariant spans the jump.
     */
    void clear() { heap_.clear(); }

  private:
    /** Strict weak ordering: a after b in pop order. */
    struct After
    {
        bool operator()(const SimEvent &a, const SimEvent &b) const
        {
            if (a.cycle != b.cycle)
                return a.cycle > b.cycle;
            if (a.kind != b.kind)
                return a.kind > b.kind;
            if (a.id != b.id)
                return a.id > b.id;
            return a.seq > b.seq;
        }
    };

    std::vector<SimEvent> heap_;
    std::uint64_t nextSeq_ = 0;
    Cycle lastPop_ = 0;
};

} // namespace laperm

#endif // LAPERM_SIM_EVENT_QUEUE_HH
