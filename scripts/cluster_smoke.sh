#!/usr/bin/env bash
# cluster-smoke: end-to-end check of cluster mode over TCP against real
# binaries (see DESIGN.md §15).
#
#   1. start laperm_served --cluster 2 on a private TCP port + private
#      shared cache dir; the supervisor forks two worker daemons on
#      derived ports
#   2. wait for readiness via --ping through the balancer
#   3. submit the same simulation directly (laperm_sim --csv), cold
#      through the cluster, and again cached — all three must be
#      byte-identical
#   4. kill -9 every worker; the supervisor respawns them with empty
#      in-memory tiers, so a resubmit must be served from the shared
#      disk tier: --stats must report cache_shared_hits > 0 (and the
#      payload must still byte-match the direct run)
#   5. protocol shutdown; the supervisor and its workers exit cleanly
#
# Step 4 is the tier distinction that only a process restart can
# exercise: a warm worker answers from memory (cache_mem_hits), so the
# shared-tier counter stays zero until a worker that did NOT execute
# the run serves its bytes off disk. All workers are killed — a
# surviving worker would answer from its L1 and mask the disk tier.
#
# Usage: scripts/cluster_smoke.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
SIM="$BUILD/src/laperm_sim"
SERVED="$BUILD/src/laperm_served"
SUBMIT="$BUILD/src/laperm_submit"

for bin in "$SIM" "$SERVED" "$SUBMIT"; do
    if [ ! -x "$bin" ]; then
        echo "cluster_smoke: missing binary '$bin' (build first)" >&2
        exit 1
    fi
done

WORK=$(mktemp -d /tmp/laperm_cluster_smoke.XXXXXX)
export LAPERM_CACHE_DIR="$WORK/cache"
DAEMON_PID=

cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill "$DAEMON_PID" 2>/dev/null || true
        wait "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

# Cluster mode needs an explicit TCP port (workers listen on port+1+i).
# Derive one from the pid and retry a few candidates in case it is
# taken; readiness doubles as the bind check.
EP=
for attempt in 0 1 2 3 4; do
    port=$((21000 + ($$ + attempt * 131) % 20000))
    candidate="tcp:127.0.0.1:$port"
    "$SERVED" --listen "$candidate" --cluster 2 --jobs 2 \
        >"$WORK/daemon.log" 2>&1 &
    DAEMON_PID=$!
    ready=0
    for _ in $(seq 1 100); do
        if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
            break # bind failed; try the next port
        fi
        if "$SUBMIT" --connect "$candidate" --ping >/dev/null 2>&1; then
            ready=1
            break
        fi
        sleep 0.1
    done
    if [ "$ready" -eq 1 ]; then
        EP="$candidate"
        break
    fi
    kill "$DAEMON_PID" 2>/dev/null || true
    wait "$DAEMON_PID" 2>/dev/null || true
    DAEMON_PID=
done
if [ -z "$EP" ]; then
    echo "cluster_smoke: cluster never became ready" >&2
    cat "$WORK/daemon.log" >&2 || true
    exit 1
fi
"$SUBMIT" --connect "$EP" --ping

# Determinism contract through the balancer: direct, cold-served, and
# cache-served output must be byte-identical.
req=(--workload bfs-cage --scale tiny --seed 1)
"$SIM" "${req[@]}" --csv >"$WORK/direct.csv"
"$SUBMIT" --connect "$EP" "${req[@]}" >"$WORK/cold.csv"
"$SUBMIT" --connect "$EP" "${req[@]}" >"$WORK/cached.csv"
cmp "$WORK/direct.csv" "$WORK/cold.csv"
cmp "$WORK/direct.csv" "$WORK/cached.csv"
echo "cluster_smoke: direct/cold/cached outputs byte-identical"

# Kill every worker (the supervisor logs "worker <i> pid <pid>" for
# each spawn); respawned workers come back with empty memory tiers.
worker_pids=$(awk '/^laperm_served worker [0-9]+ pid /{print $5}' \
    "$WORK/daemon.log")
[ "$(wc -w <<<"$worker_pids")" -eq 2 ]
for pid in $worker_pids; do
    kill -9 "$pid"
done

# Await respawn: two more spawn lines, then the balancer answers again.
respawned=0
for _ in $(seq 1 100); do
    n=$(grep -c '^laperm_served worker [0-9]* pid ' "$WORK/daemon.log")
    if [ "$n" -ge 4 ] &&
        "$SUBMIT" --connect "$EP" --ping >/dev/null 2>&1; then
        respawned=1
        break
    fi
    sleep 0.1
done
if [ "$respawned" -ne 1 ]; then
    echo "cluster_smoke: workers never respawned" >&2
    cat "$WORK/daemon.log" >&2 || true
    exit 1
fi

# The resubmit must be served off the shared disk tier — the respawned
# worker never executed this run — and still match the direct bytes.
"$SUBMIT" --connect "$EP" "${req[@]}" >"$WORK/restart.csv"
cmp "$WORK/direct.csv" "$WORK/restart.csv"
"$SUBMIT" --connect "$EP" --stats >"$WORK/stats.tsv"
shared=$(awk '$1 == "cache_shared_hits" {print $2}' "$WORK/stats.tsv")
if [ -z "$shared" ] || [ "$shared" -eq 0 ]; then
    echo "cluster_smoke: expected cache_shared_hits > 0 after worker" \
        "restart, got '${shared:-missing}'" >&2
    cat "$WORK/stats.tsv" >&2
    exit 1
fi
grep -q '^workers	2$' "$WORK/stats.tsv"
echo "cluster_smoke: shared-tier hit after worker restart ($shared)"

# Clean protocol shutdown: balancer fans out, supervisor exits 0.
"$SUBMIT" --connect "$EP" --shutdown
wait "$DAEMON_PID"
DAEMON_PID=
echo "cluster_smoke: OK"
