#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hh"

using namespace laperm;

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(Rng, BoundedInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        auto v = r.nextBounded(13);
        EXPECT_LT(v, 13u);
    }
}

TEST(Rng, BoundedCoversRange)
{
    Rng r(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng r(11);
    const int n = 100000;
    double sum = 0, sum2 = 0;
    for (int i = 0; i < n; ++i) {
        double g = r.nextGaussian();
        sum += g;
        sum2 += g * g;
    }
    double mean = sum / n;
    double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, ZipfSkewed)
{
    Rng r(5);
    const int n = 50000;
    int first_decile = 0;
    for (int i = 0; i < n; ++i) {
        auto v = r.nextZipf(1000, 1.0);
        EXPECT_LT(v, 1000u);
        if (v < 100)
            ++first_decile;
    }
    // With s=1 the first 10% of ranks should carry well over half the
    // mass (H(100)/H(1000) ~ 0.67).
    EXPECT_GT(first_decile, n / 2);
}

TEST(Rng, ZipfDegenerate)
{
    Rng r(5);
    EXPECT_EQ(r.nextZipf(1, 1.2), 0u);
}
