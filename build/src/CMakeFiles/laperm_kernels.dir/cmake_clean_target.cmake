file(REMOVE_RECURSE
  "liblaperm_kernels.a"
)
