/**
 * @file
 * Ablation: warp-scheduler composition (Section IV-F). LaPerm is
 * orthogonal to the warp scheduler; this bench runs RR and LaPerm
 * under GTO (Table I default), LRR, and a TB-aware family-grouping
 * scheduler in the spirit of [10], showing the TB-level gains survive
 * (and compose with) different warp-level disciplines.
 */

#include <cstdio>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/table.hh"
#include "workloads/registry.hh"

using namespace laperm;

int
main(int argc, char **argv)
{
    setVerbose(false);
    Scale scale = argc > 1 ? scaleFromString(argv[1])
                           : scaleFromEnv(Scale::Small);

    const char *names[] = {"bfs-citation", "clr-cage", "sssp-citation"};

    std::printf("Ablation: warp scheduler x TB scheduler "
                "(DTBL, scale '%s')\n\n",
                toString(scale));

    Table t({"workload", "warp sched", "RR IPC", "LaPerm IPC",
             "speedup", "LaPerm L1"});
    for (const char *name : names) {
        auto w = createWorkload(name);
        w->setup(scale, 1);
        for (WarpPolicy wp :
             {WarpPolicy::GTO, WarpPolicy::LRR, WarpPolicy::TbAware}) {
            GpuConfig cfg = paperConfig();
            cfg.dynParModel = DynParModel::DTBL;
            cfg.warpPolicy = wp;
            cfg.tbPolicy = TbPolicy::RR;
            RunResult rr = runOne(*w, cfg);
            cfg.tbPolicy = TbPolicy::AdaptiveBind;
            RunResult lp = runOne(*w, cfg);
            t.addRow({name, toString(wp), fmtF(rr.ipc), fmtF(lp.ipc),
                      fmtF(rr.ipc > 0 ? lp.ipc / rr.ipc : 0.0),
                      fmtPct(lp.l1HitRate)});
        }
        t.addRule();
    }
    t.print();
    std::printf("\npaper: LaPerm is transparent to the warp scheduler "
                "and can be combined with warp-level locality "
                "optimizations (Section IV-F).\n");
    return 0;
}
