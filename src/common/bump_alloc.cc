#include "common/bump_alloc.hh"

#include "common/log.hh"

namespace laperm {

BumpAllocator::BumpAllocator(Addr base)
    : base_(lineAddr(base + kLineBytes - 1)), cursor_(base_)
{
}

Addr
BumpAllocator::alloc(std::size_t bytes, const std::string &name)
{
    laperm_assert(bytes > 0, "zero-sized allocation '%s'", name.c_str());
    Addr addr = cursor_;
    Addr end = addr + bytes;
    cursor_ = lineAddr(end + kLineBytes - 1);
    regions_.push_back({name, addr, bytes});
    return addr;
}

Addr
BumpAllocator::allocArray(std::size_t count, std::size_t elem_bytes,
                          const std::string &name)
{
    return alloc(count * elem_bytes, name);
}

} // namespace laperm
