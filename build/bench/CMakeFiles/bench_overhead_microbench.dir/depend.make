# Empty dependencies file for bench_overhead_microbench.
# This may be replaced when dependencies are built.
