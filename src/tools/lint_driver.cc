#include "tools/lint_driver.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "tools/lint_cycle.hh"
#include "tools/lint_event.hh"
#include "tools/lint_layering.hh"

namespace laperm {
namespace simlint {

namespace {

struct LoadedFile
{
    std::string path;
    std::string content;
    std::vector<std::string> rawLines;
};

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

bool
fileExists(const std::string &path)
{
    std::ifstream in(path);
    return static_cast<bool>(in);
}

std::string
squeeze(const std::string &s)
{
    std::string out;
    bool space = true;
    for (char c : s) {
        if (std::isspace(static_cast<unsigned char>(c))) {
            if (!out.empty())
                space = true;
        } else {
            if (space && !out.empty())
                out += ' ';
            space = false;
            out += c;
        }
    }
    return out;
}

std::uint64_t
nowMicros()
{
    // Wall time for reporting the linter's own pass cost; tools/ sits
    // outside the restricted directories where wall-clock is banned.
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
sortFindings(std::vector<Finding> &fs)
{
    std::sort(fs.begin(), fs.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.path != b.path)
                      return a.path < b.path;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.rule != b.rule)
                      return static_cast<int>(a.rule) <
                             static_cast<int>(b.rule);
                  return a.message < b.message;
              });
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
relativeToRoot(const std::string &path, const std::string &root)
{
    std::string prefix = root;
    while (!prefix.empty() && (prefix.back() == '/' || prefix.back() == '\\'))
        prefix.pop_back();
    if (!prefix.empty() && path.size() > prefix.size() &&
        path.compare(0, prefix.size(), prefix) == 0 &&
        (path[prefix.size()] == '/' || path[prefix.size()] == '\\')) {
        return path.substr(prefix.size() + 1);
    }
    return path;
}

std::string
baselineKey(const Finding &f, const std::string &flaggedLine,
            const std::string &root)
{
    return std::string(ruleName(f.rule)) + "\t" +
           relativeToRoot(f.path, root) + "\t" + squeeze(flaggedLine);
}

std::string
renderBaseline(const std::vector<std::string> &keys)
{
    std::string out =
        "# sim-lint baseline: one grandfathered finding per line\n"
        "# <rule>\\t<path>\\t<squeezed flagged line>\n"
        "# New findings gate; entries here burn down. A stale entry\n"
        "# (matching no current finding) fails the gate — remove it.\n";
    std::vector<std::string> sorted = keys;
    std::sort(sorted.begin(), sorted.end());
    for (const auto &k : sorted)
        out += k + "\n";
    return out;
}

bool
writeSarif(const std::string &path, const std::vector<Finding> &findings,
           const std::string &root)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;

    // Rules actually present, deduped, in enum order.
    std::vector<Rule> rules;
    for (const Finding &f : findings) {
        if (std::find(rules.begin(), rules.end(), f.rule) == rules.end())
            rules.push_back(f.rule);
    }
    std::sort(rules.begin(), rules.end(),
              [](Rule a, Rule b) {
                  return static_cast<int>(a) < static_cast<int>(b);
              });

    out << "{\n"
        << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-"
           "tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
        << "  \"version\": \"2.1.0\",\n"
        << "  \"runs\": [\n"
        << "    {\n"
        << "      \"tool\": {\n"
        << "        \"driver\": {\n"
        << "          \"name\": \"sim-lint\",\n"
        << "          \"version\": \"2.0.0\",\n"
        << "          \"informationUri\": "
           "\"DESIGN.md#12-static-analysis-architecture\",\n"
        << "          \"rules\": [\n";
    for (std::size_t i = 0; i < rules.size(); ++i) {
        out << "            {\"id\": \"" << ruleName(rules[i]) << "\"}"
            << (i + 1 < rules.size() ? "," : "") << "\n";
    }
    out << "          ]\n"
        << "        }\n"
        << "      },\n"
        << "      \"results\": [\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        out << "        {\n"
            << "          \"ruleId\": \"" << ruleName(f.rule) << "\",\n"
            << "          \"level\": \"error\",\n"
            << "          \"message\": {\"text\": \""
            << jsonEscape(f.message) << "\"},\n"
            << "          \"locations\": [\n"
            << "            {\n"
            << "              \"physicalLocation\": {\n"
            << "                \"artifactLocation\": {\"uri\": \""
            << jsonEscape(relativeToRoot(f.path, root)) << "\"},\n"
            << "                \"region\": {\"startLine\": " << f.line
            << "}\n"
            << "              }\n"
            << "            }\n"
            << "          ]\n"
            << "        }" << (i + 1 < findings.size() ? "," : "")
            << "\n";
    }
    out << "      ]\n"
        << "    }\n"
        << "  ]\n"
        << "}\n";
    return static_cast<bool>(out);
}

DriverResult
runDriver(const DriverOptions &opts)
{
    DriverResult result;

    // --- resolve configuration ------------------------------------
    std::string specPath = opts.layeringSpec;
    if (specPath.empty()) {
        const std::string candidate = opts.root + "/layering.toml";
        if (fileExists(candidate))
            specPath = candidate;
    }
    LayerSpec spec;
    bool haveSpec = false;
    if (!specPath.empty()) {
        std::string err;
        if (!loadLayerSpec(specPath, spec, err)) {
            result.error = err;
            return result;
        }
        haveSpec = true;
    }

    std::string baselinePath = opts.baselinePath;
    if (baselinePath.empty()) {
        const std::string candidate = opts.root + "/sim_lint_baseline.tsv";
        if (fileExists(candidate))
            baselinePath = candidate;
    }

    // --- load files -----------------------------------------------
    std::vector<std::string> paths = opts.files;
    if (paths.empty())
        paths = listSources(opts.root + "/src");
    std::vector<LoadedFile> files;
    files.reserve(paths.size());
    for (const auto &p : paths) {
        LoadedFile f;
        f.path = p;
        if (!readFile(p, f.content)) {
            result.error = "cannot read " + p;
            return result;
        }
        f.rawLines = splitLines(f.content);
        files.push_back(std::move(f));
    }
    result.filesScanned = files.size();

    // --- passes (timed) -------------------------------------------
    // Raw findings per file index, so suppression can match markers
    // file-locally.
    std::vector<std::vector<Finding>> raw(files.size());
    auto runPass = [&](const char *name, auto &&passFn) {
        PassTiming t;
        t.pass = name;
        const std::uint64_t t0 = nowMicros();
        for (std::size_t i = 0; i < files.size(); ++i) {
            std::vector<Finding> fs = passFn(files[i]);
            t.findings += fs.size();
            raw[i].insert(raw[i].end(), fs.begin(), fs.end());
        }
        t.micros = nowMicros() - t0;
        result.timings.push_back(t);
    };

    runPass("token", [](const LoadedFile &f) {
        return scanTokenRules(f.path, f.content);
    });
    if (haveSpec) {
        runPass("layering", [&](const LoadedFile &f) {
            return lintLayering(f.path, f.content, spec);
        });
    }
    runPass("cycle-safety", [](const LoadedFile &f) {
        return lintCycleSafety(f.path, f.content);
    });
    runPass("event-discipline", [](const LoadedFile &f) {
        return lintEventDiscipline(f.path, f.content);
    });

    // --- suppression + audit --------------------------------------
    std::vector<Finding> kept;
    for (std::size_t i = 0; i < files.size(); ++i) {
        std::vector<Allow> allows = collectAllows(files[i].rawLines);
        std::vector<Finding> fs = applySuppressions(raw[i], allows);
        kept.insert(kept.end(), fs.begin(), fs.end());
        if (opts.audit) {
            for (const Allow &a : allows) {
                if (a.used)
                    continue;
                kept.push_back(Finding{
                    files[i].path, a.line, Rule::UnusedAllow,
                    std::string("suppression 'sim-lint: ") +
                        (a.fileWide ? "allow-file(" : "allow(") +
                        ruleName(a.rule) +
                        ")' no longer suppresses any finding; remove "
                        "it (or fix the regression that re-armed it)"});
            }
        }
    }

    // Flagged-line lookup shared by baseline matching and baseline
    // writing.
    auto flaggedLine = [&](const Finding &f) -> std::string {
        for (const LoadedFile &lf : files) {
            if (lf.path == f.path) {
                if (f.line >= 1 && f.line <= lf.rawLines.size())
                    return lf.rawLines[f.line - 1];
                break;
            }
        }
        return "";
    };

    // --- baseline bootstrap (--write-baseline) --------------------
    if (!opts.writeBaselinePath.empty()) {
        std::vector<std::string> keys;
        for (const Finding &f : kept) {
            if (f.rule == Rule::UnusedAllow ||
                f.rule == Rule::StaleBaseline)
                continue; // audit findings are never grandfathered
            keys.push_back(baselineKey(f, flaggedLine(f), opts.root));
        }
        std::ofstream out(opts.writeBaselinePath, std::ios::binary);
        if (!out || !(out << renderBaseline(keys))) {
            result.error =
                "cannot write baseline " + opts.writeBaselinePath;
            return result;
        }
        sortFindings(kept);
        result.findings = std::move(kept);
        return result;
    }

    // --- baseline -------------------------------------------------
    if (!baselinePath.empty()) {
        std::string text;
        if (!readFile(baselinePath, text)) {
            result.error = "cannot read baseline " + baselinePath;
            return result;
        }
        // entry key -> (first line number, unmatched count)
        std::map<std::string, std::pair<std::size_t, std::size_t>> entries;
        const std::vector<std::string> blines = splitLines(text);
        for (std::size_t i = 0; i < blines.size(); ++i) {
            const std::string &l = blines[i];
            if (l.empty() || l[0] == '#')
                continue;
            auto [it, inserted] =
                entries.emplace(l, std::make_pair(i + 1, std::size_t{0}));
            (void)inserted;
            it->second.second += 1;
        }
        std::vector<Finding> unbaselined;
        for (const Finding &f : kept) {
            // Audit rules never hide behind the baseline.
            if (f.rule == Rule::UnusedAllow ||
                f.rule == Rule::StaleBaseline) {
                unbaselined.push_back(f);
                continue;
            }
            std::string flagged;
            for (const LoadedFile &lf : files) {
                if (lf.path == f.path) {
                    if (f.line >= 1 && f.line <= lf.rawLines.size())
                        flagged = lf.rawLines[f.line - 1];
                    break;
                }
            }
            auto it = entries.find(baselineKey(f, flagged, opts.root));
            if (it != entries.end() && it->second.second > 0) {
                it->second.second -= 1;
                result.baselineMatched += 1;
            } else {
                unbaselined.push_back(f);
            }
        }
        for (const auto &kv : entries) {
            for (std::size_t n = 0; n < kv.second.second; ++n) {
                unbaselined.push_back(Finding{
                    baselinePath, kv.second.first, Rule::StaleBaseline,
                    "baseline entry matches no current finding; the "
                    "debt was paid — delete the entry: " + kv.first});
            }
        }
        kept = std::move(unbaselined);
    }

    sortFindings(kept);
    result.findings = std::move(kept);

    if (!opts.sarifPath.empty()) {
        if (!writeSarif(opts.sarifPath, result.findings, opts.root)) {
            result.error = "cannot write SARIF " + opts.sarifPath;
            return result;
        }
    }
    return result;
}

} // namespace simlint
} // namespace laperm
