#include <gtest/gtest.h>

#include "graph/algorithms.hh"
#include "graph/generators.hh"

using namespace laperm;

namespace {

Csr
pathGraph(std::uint32_t n)
{
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    for (std::uint32_t v = 0; v + 1 < n; ++v)
        edges.emplace_back(v, v + 1);
    return Csr::fromEdges(n, std::move(edges), true);
}

} // namespace

TEST(Bfs, PathGraphLevels)
{
    Csr g = pathGraph(6);
    BfsResult r = bfs(g, 0);
    for (std::uint32_t v = 0; v < 6; ++v)
        EXPECT_EQ(r.level[v], v);
    EXPECT_EQ(r.frontiers.size(), 6u);
}

TEST(Bfs, FrontiersPartitionReachableVertices)
{
    Csr g = genRmat(11, 8, 3);
    BfsResult r = bfs(g, 0);
    std::vector<bool> seen(g.numVertices(), false);
    std::uint32_t reached = 0;
    for (std::size_t l = 0; l < r.frontiers.size(); ++l) {
        for (std::uint32_t v : r.frontiers[l]) {
            EXPECT_FALSE(seen[v]);
            seen[v] = true;
            EXPECT_EQ(r.level[v], l);
            ++reached;
        }
    }
    for (std::uint32_t v = 0; v < g.numVertices(); ++v) {
        if (r.level[v] != kUnreached) {
            EXPECT_TRUE(seen[v]);
        }
    }
    EXPECT_GT(reached, 0u);
}

TEST(Bfs, LevelsAreShortestHopCounts)
{
    Csr g = genCitation(3000, 6, 11);
    BfsResult r = bfs(g, 10);
    // Triangle inequality over edges: levels differ by at most 1.
    for (std::uint32_t v = 0; v < g.numVertices(); ++v) {
        if (r.level[v] == kUnreached)
            continue;
        for (std::uint32_t u : g.neighbors(v)) {
            if (r.level[u] == kUnreached)
                continue;
            EXPECT_LE(r.level[u], r.level[v] + 1);
        }
    }
}

TEST(Sssp, PathGraphDistances)
{
    Csr g = pathGraph(5);
    std::vector<std::uint32_t> w(g.numEdges(), 3);
    SsspResult r = sssp(g, w, 0);
    for (std::uint32_t v = 0; v < 5; ++v)
        EXPECT_EQ(r.dist[v], 3 * v);
}

TEST(Sssp, NoEdgeRelaxable)
{
    // Final distances satisfy dist[v] <= dist[u] + w(u,v).
    Csr g = genCage(2000, 24, 8, 5);
    auto w = genEdgeWeights(g, 32, 5);
    SsspResult r = sssp(g, w, 100, 1000);
    for (std::uint32_t u = 0; u < g.numVertices(); ++u) {
        if (r.dist[u] == kUnreached)
            continue;
        auto nbrs = g.neighbors(u);
        std::uint64_t base = g.offset(u);
        for (std::size_t i = 0; i < nbrs.size(); ++i)
            EXPECT_LE(r.dist[nbrs[i]], r.dist[u] + w[base + i]);
    }
}

TEST(Sssp, RoundsShrinkEventually)
{
    Csr g = genUniform(2000, 8, 2);
    auto w = genEdgeWeights(g, 16, 2);
    SsspResult r = sssp(g, w, 0, 64);
    ASSERT_GT(r.rounds.size(), 1u);
    EXPECT_EQ(r.rounds[0].size(), 1u); // just the source
}

TEST(Coloring, Valid)
{
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        Csr g = genRmat(11, 8, seed);
        ColoringResult r = jpColoring(g, seed);
        EXPECT_TRUE(coloringValid(g, r.color)) << "seed " << seed;
    }
}

TEST(Coloring, RoundsAreIndependentSets)
{
    Csr g = genCitation(2000, 8, 4);
    ColoringResult r = jpColoring(g, 4);
    for (const auto &round : r.rounds) {
        std::vector<bool> in_round(g.numVertices(), false);
        for (std::uint32_t v : round)
            in_round[v] = true;
        for (std::uint32_t v : round) {
            for (std::uint32_t u : g.neighbors(v))
                EXPECT_FALSE(in_round[u] && u != v);
        }
    }
}

TEST(Coloring, EveryVertexColoredOnce)
{
    Csr g = genCage(1500, 16, 6, 7);
    ColoringResult r = jpColoring(g, 7);
    std::vector<int> times(g.numVertices(), 0);
    for (const auto &round : r.rounds) {
        for (std::uint32_t v : round)
            ++times[v];
    }
    for (std::uint32_t v = 0; v < g.numVertices(); ++v) {
        EXPECT_LE(times[v], 1);
        EXPECT_NE(r.color[v], kUnreached);
    }
}
