#include "tenant/tenant_manager.hh"

#include <limits>

#include "common/log.hh"
#include "gpu/gpu.hh"
#include "obs/tenant_tracker.hh"
#include "sim/dispatch_gate.hh"
#include "tenant/predictor.hh"
#include "workloads/registry.hh"

namespace laperm {
namespace tenant {

namespace {

/** The one concrete DispatchGate: at most one tenant gated at a time. */
class SingleVictimGate : public DispatchGate
{
  public:
    bool blocked(std::uint32_t tenant) const override
    {
        return victim_ >= 0 && tenant == static_cast<std::uint32_t>(victim_);
    }

    int victim() const { return victim_; }
    void setVictim(int tenant) { victim_ = tenant; }

  private:
    int victim_ = -1;
};

/** Observer feeding observed TB runtimes into the per-tenant EWMAs. */
class PredictorFeed : public obs::SimObserver
{
  public:
    explicit PredictorFeed(std::vector<RuntimePredictor> &predictors)
        : predictors_(predictors)
    {
    }

    void onTbRetire(const obs::TbEvent &e) override
    {
        if (e.tenant < predictors_.size())
            predictors_[e.tenant].observe(e.cycle - e.dispatchCycle);
    }

  private:
    std::vector<RuntimePredictor> &predictors_;
};

/** Per-stream progress through its job/wave sequence. */
struct StreamState
{
    std::uint32_t jobsDone = 0;
    bool activeJob = false;
    Cycle jobArrival = 0; ///< scheduled arrival of the active job
    std::size_t waveIx = 0;
    bool waveInFlight = false;
    Cycle waveLaunchAt = 0;
    std::vector<Cycle> turnarounds;
    std::vector<Cycle> waveLatencies;
};

} // namespace

TenantManager::TenantManager(const MixSpec &mix, const GpuConfig &cfg,
                             std::vector<const Workload *> workloads)
    : mix_(mix), cfg_(cfg), workloads_(std::move(workloads))
{
    laperm_assert(!mix_.tenants.empty(), "mix has no tenants");
    laperm_assert(workloads_.size() == mix_.tenants.size(),
                  "workloads must be index-aligned with mix tenants");
}

MultiTenantResult
TenantManager::run(Cycle max_cycles)
{
    const std::size_t n = mix_.tenants.size();

    Gpu gpu(cfg_);
    obs::TenantTracker tracker;
    std::vector<RuntimePredictor> predictors(
        n, RuntimePredictor(mix_.ewmaShift));
    PredictorFeed feed(predictors);
    gpu.observers().attach(&tracker);
    gpu.observers().attach(&feed);

    SingleVictimGate gate;
    gpu.setDispatchGate(&gate);

    const std::uint64_t threadCapacity =
        static_cast<std::uint64_t>(cfg_.numSmx) * cfg_.maxThreadsPerSmx;

    // The BEMPS-style admission test: device empty, or occupancy still
    // under the mix threshold — and a KDU entry to put the kernel in
    // (hostLaunch treats a full kernel table as a driver bug).
    auto admit = [&]() {
        if (!gpu.kdu().hasFreeEntry())
            return false;
        const std::uint64_t resident = gpu.residentThreads();
        if (resident == 0)
            return true;
        return resident * 100 <
               static_cast<std::uint64_t>(mix_.admissionThresholdPct) *
                   threadCapacity;
    };

    std::vector<StreamState> streams(n);
    Cycle lastDrain = 0;
    std::uint32_t stalls = 0;

    for (;;) {
        const Cycle now = gpu.now();
        laperm_assert(now < max_cycles,
                      "multi-tenant run exceeded max_cycles (livelock?)");

        // (a) Retire drained waves, in tenant index order.
        for (std::size_t i = 0; i < n; ++i) {
            StreamState &st = streams[i];
            const std::uint32_t tid = static_cast<std::uint32_t>(i);
            if (!st.waveInFlight || tracker.busy(tid))
                continue;
            const Cycle done = tracker.counters(tid).lastDrainCycle;
            st.waveLatencies.push_back(done - st.waveLaunchAt);
            st.waveInFlight = false;
            if (done > lastDrain)
                lastDrain = done;
            if (st.waveIx == workloads_[i]->waves().size()) {
                // Last wave of the job drained: the job is complete.
                st.turnarounds.push_back(done - st.jobArrival);
                st.activeJob = false;
                ++st.jobsDone;
            }
        }

        // (b) Start due jobs and launch next waves, in tenant index
        // order. The highest-priority tenant held at admission becomes
        // the waiter the preemption stage serves.
        bool launched = false;
        int waiter = -1;
        for (std::size_t i = 0; i < n; ++i) {
            StreamState &st = streams[i];
            const TenantSpec &spec = mix_.tenants[i];
            if (!st.activeJob && st.jobsDone < spec.jobs) {
                const Cycle arrival =
                    spec.firstArrival +
                    static_cast<Cycle>(st.jobsDone) * spec.period;
                if (arrival <= now) {
                    st.activeJob = true;
                    st.jobArrival = arrival;
                    st.waveIx = 0;
                }
            }
            if (!st.activeJob || st.waveInFlight)
                continue;
            const std::vector<LaunchRequest> &waves =
                workloads_[i]->waves();
            laperm_assert(st.waveIx < waves.size(),
                          "active job with no wave in flight must have "
                          "a next wave");
            if (admit()) {
                LaunchRequest req = waves[st.waveIx];
                req.tenant = static_cast<std::uint32_t>(i);
                gpu.launchHostKernel(req);
                st.waveInFlight = true;
                st.waveLaunchAt = now;
                ++st.waveIx;
                launched = true;
            } else if (waiter < 0 ||
                       spec.priority <
                           mix_.tenants[static_cast<std::size_t>(waiter)]
                               .priority) {
                waiter = static_cast<int>(i);
            }
        }

        // (c) Preemption: while a waiter is held, gate the one strictly
        // lower-priority tenant that is cheapest to drain (predicted
        // drain = EWMA TB runtime x resident TBs; ties break to the
        // lower tenant index). No waiter: clear the gate.
        int victim = -1;
        if (waiter >= 0) {
            const std::uint32_t waiterPri =
                mix_.tenants[static_cast<std::size_t>(waiter)].priority;
            Cycle best = kNoCycle;
            for (std::size_t j = 0; j < n; ++j) {
                if (mix_.tenants[j].priority <= waiterPri)
                    continue;
                const std::uint64_t resident =
                    tracker.residentTbs(static_cast<std::uint32_t>(j));
                if (resident == 0)
                    continue;
                const Cycle cost = predictors[j].predictedDrain(resident);
                if (victim < 0 || cost < best) {
                    best = cost;
                    victim = static_cast<int>(j);
                }
            }
        }
        if (victim != gate.victim()) {
            gate.setVictim(victim);
            gpu.noteDispatchGateChanged();
        }

        // (d) Advance. Done when every stream finished its jobs and the
        // device drained; otherwise run one quantum (clipped to the
        // next arrival), or jump an idle device straight to it.
        bool allDone = true;
        Cycle nextArrival = kNoCycle;
        for (std::size_t i = 0; i < n; ++i) {
            const StreamState &st = streams[i];
            const TenantSpec &spec = mix_.tenants[i];
            if (st.activeJob || st.jobsDone < spec.jobs)
                allDone = false;
            if (!st.activeJob && st.jobsDone < spec.jobs) {
                const Cycle arrival =
                    spec.firstArrival +
                    static_cast<Cycle>(st.jobsDone) * spec.period;
                if (arrival > now && arrival < nextArrival)
                    nextArrival = arrival;
            }
        }
        if (allDone && gpu.isIdle())
            break;

        if (gpu.isIdle() && !launched) {
            // Nothing in flight and nothing launchable now; the only
            // way forward is the next scheduled arrival.
            laperm_assert(nextArrival != kNoCycle,
                          "idle device with no launch and no pending "
                          "arrival");
            gpu.advanceTo(nextArrival);
            stalls = 0;
            continue;
        }

        Cycle stop = now + mix_.quantum;
        if (nextArrival != kNoCycle && nextArrival < stop)
            stop = nextArrival;
        gpu.runUntil(stop, max_cycles);

        if (gpu.now() == now && !launched) {
            laperm_assert(++stalls < 4,
                          "multi-tenant decision loop made no progress");
        } else {
            stalls = 0;
        }
    }

    MultiTenantResult out;
    out.makespan = lastDrain;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t tid = static_cast<std::uint32_t>(i);
        TenantRunResult r;
        r.name = mix_.tenants[i].name;
        r.tenant = tid;
        r.jobTurnarounds = std::move(streams[i].turnarounds);
        r.waveLatencies = std::move(streams[i].waveLatencies);
        r.retiredTbs = tracker.counters(tid).retiredTbs;
        r.dispatchedTbs = tracker.counters(tid).dispatchedTbs;
        r.kernelsAdmitted = tracker.counters(tid).kernelsAdmitted;
        out.perTenant.push_back(std::move(r));
    }
    return out;
}

MixStudy
runMixStudy(const MixSpec &mix, const GpuConfig &cfg)
{
    // One workload instance per tenant, even when streams share a
    // workload name: instances are cheap relative to simulation and
    // per-tenant ownership keeps the setup deterministic and simple.
    // Each tenant gets a disjoint 256 GiB address-space slice so
    // co-resident workloads never alias in the shared caches (tenant 0
    // keeps the default base, matching single-app runs). The solo
    // baselines reuse the same instances, hence the same layout, so
    // ANTT compares contention and nothing else.
    std::vector<std::unique_ptr<Workload>> owned;
    std::vector<const Workload *> borrowed;
    for (std::size_t i = 0; i < mix.tenants.size(); ++i) {
        const TenantSpec &t = mix.tenants[i];
        owned.push_back(createWorkload(t.workload));
        if (i > 0) {
            owned.back()->setMemoryBase(0x10000000ull +
                                        (static_cast<Addr>(i) << 38));
        }
        owned.back()->setup(t.scale, cfg.seed);
        borrowed.push_back(owned.back().get());
    }

    MixStudy study;
    {
        TenantManager manager(mix, cfg, borrowed);
        study.shared = manager.run();
    }

    // Solo baselines: each stream alone on the same device with the
    // same arrival schedule and knobs, so ANTT isolates contention.
    for (std::size_t i = 0; i < mix.tenants.size(); ++i) {
        MixSpec soloMix;
        soloMix.name = mix.name + "-solo-" + mix.tenants[i].name;
        soloMix.tenants.push_back(mix.tenants[i]);
        soloMix.admissionThresholdPct = mix.admissionThresholdPct;
        soloMix.ewmaShift = mix.ewmaShift;
        soloMix.quantum = mix.quantum;
        TenantManager manager(soloMix, cfg, {borrowed[i]});
        MultiTenantResult r = manager.run();
        laperm_assert(r.perTenant.size() == 1, "solo run grew tenants");
        study.solo.push_back(std::move(r.perTenant[0]));
        // Keep the shared run's tenant id for readable reporting.
        study.solo.back().tenant = static_cast<std::uint32_t>(i);
    }

    study.metrics = computeMixMetrics(study.shared, study.solo);
    return study;
}

} // namespace tenant
} // namespace laperm
