file(REMOVE_RECURSE
  "CMakeFiles/laperm_analysis.dir/analysis/footprint.cc.o"
  "CMakeFiles/laperm_analysis.dir/analysis/footprint.cc.o.d"
  "liblaperm_analysis.a"
  "liblaperm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laperm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
