#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hh"

using namespace laperm;

namespace {

/** Mean |neighbor - vertex| id distance, a locality measure. */
double
meanNeighborDistance(const Csr &g)
{
    double sum = 0;
    std::uint64_t n = 0;
    for (std::uint32_t v = 0; v < g.numVertices(); ++v) {
        for (std::uint32_t u : g.neighbors(v)) {
            sum += std::abs(static_cast<double>(u) -
                            static_cast<double>(v));
            ++n;
        }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

} // namespace

TEST(Generators, Deterministic)
{
    Csr a = genCitation(2000, 8, 42);
    Csr b = genCitation(2000, 8, 42);
    EXPECT_EQ(a.numEdges(), b.numEdges());
    EXPECT_EQ(a.cols(), b.cols());
}

TEST(Generators, SeedChangesGraph)
{
    Csr a = genCitation(2000, 8, 1);
    Csr b = genCitation(2000, 8, 2);
    EXPECT_NE(a.cols(), b.cols());
}

TEST(Generators, CitationIsLocalityConcentrated)
{
    // The paper attributes high sharing on citation/cage inputs to
    // neighbors living at nearby ids; RMAT scatters them.
    Csr cit = genCitation(4096, 8, 7);
    Csr rmat = genRmat(12, 8, 7);
    EXPECT_LT(meanNeighborDistance(cit),
              meanNeighborDistance(rmat) * 0.5);
}

TEST(Generators, CageIsBanded)
{
    const std::uint32_t band = 32;
    Csr g = genCage(4000, band, 8, 3);
    for (std::uint32_t v = 0; v < g.numVertices(); ++v) {
        for (std::uint32_t u : g.neighbors(v)) {
            EXPECT_LE(std::abs(static_cast<std::int64_t>(u) -
                               static_cast<std::int64_t>(v)),
                      static_cast<std::int64_t>(band));
        }
    }
}

TEST(Generators, RmatIsHeavyTailed)
{
    Csr g = genRmat(13, 16, 5);
    // A scale-free graph has a max degree far above the average.
    double avg = static_cast<double>(g.numEdges()) / g.numVertices();
    EXPECT_GT(g.maxDegree(), avg * 10);
}

TEST(Generators, UniformDegreesConcentrated)
{
    Csr g = genUniform(4000, 16, 9);
    double avg = static_cast<double>(g.numEdges()) / g.numVertices();
    EXPECT_LT(g.maxDegree(), avg * 4);
}

TEST(Generators, EdgeWeightsInRange)
{
    Csr g = genUniform(1000, 8, 1);
    auto w = genEdgeWeights(g, 64, 2);
    ASSERT_EQ(w.size(), g.numEdges());
    for (auto x : w) {
        EXPECT_GE(x, 1u);
        EXPECT_LE(x, 64u);
    }
}

TEST(Generators, SymmetricGraphs)
{
    // Every generator symmetrizes: degree(u->v) implies v->u exists.
    for (const Csr &g : {genCitation(1000, 6, 3), genCage(1000, 16, 6, 3),
                         genUniform(1000, 6, 3)}) {
        for (std::uint32_t v = 0; v < g.numVertices(); ++v) {
            for (std::uint32_t u : g.neighbors(v)) {
                auto back = g.neighbors(u);
                EXPECT_TRUE(std::find(back.begin(), back.end(), v) !=
                            back.end());
            }
        }
    }
}
