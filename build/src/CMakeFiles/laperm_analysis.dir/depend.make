# Empty dependencies file for laperm_analysis.
# This may be replaced when dependencies are built.
