/**
 * @file
 * Bank-queued DRAM timing model. Each 128B access occupies its bank for
 * a service interval; latency is a fixed access time plus queueing.
 */

#ifndef LAPERM_MEM_DRAM_HH
#define LAPERM_MEM_DRAM_HH

#include <vector>

#include "common/types.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace laperm {

/** Flat bank array across channels; address-interleaved at line size. */
class Dram
{
  public:
    explicit Dram(const GpuConfig &cfg);

    /**
     * Issue a read of @p line arriving at @p arrival.
     * @return cycle the data is available at the L2.
     */
    Cycle read(Addr line, Cycle arrival);

    /**
     * Issue a fire-and-forget write (writeback) of @p line at @p arrival.
     * Consumes bank bandwidth; no one waits for completion.
     */
    void write(Addr line, Cycle arrival);

    void reset();

    const DramStats &stats() const { return stats_; }

  private:
    std::uint32_t bankIndex(Addr line) const;
    Cycle occupy(Addr line, Cycle arrival);

    Cycle latency_;
    Cycle serviceInterval_;
    std::vector<Cycle> bankFreeAt_;
    DramStats stats_;
};

} // namespace laperm

#endif // LAPERM_MEM_DRAM_HH
