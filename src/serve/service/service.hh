/**
 * @file
 * SimService: the request-execution engine behind the daemon
 * (DESIGN.md §10.4). Transport-independent, so tests and the
 * throughput bench drive it directly, and the Unix-socket Server is a
 * thin shell around it.
 *
 * Lifecycle of a request:
 *   1. validate — bad requests get an error, never a dead daemon;
 *   2. cache probe — fingerprint-gated ResultCache, byte-identical
 *      payload on a hit;
 *   3. single-flight — an identical request already executing is
 *      joined, not re-run;
 *   4. admission — at most queueCapacity requests queued or running;
 *      beyond that the request is shed with an `overloaded` status
 *      (bounded memory, never a crash);
 *   5. execute on the shared harness::ThreadPool, store to cache,
 *      wake all joiners.
 *
 * A waiter gives up after timeoutMs (`timeout` status) but the
 * execution itself keeps running and still populates the cache — a
 * retry typically hits.
 *
 * This layer deliberately reads wall clocks (latency metrics,
 * timeouts): it is SERVICE code, not simulator code, and sits outside
 * sim-lint's restricted directories (DESIGN.md §7.3). Simulated time
 * never flows from here into the simulation.
 */

#ifndef LAPERM_SERVE_SERVICE_SERVICE_HH
#define LAPERM_SERVE_SERVICE_SERVICE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "harness/result_cache.hh"
#include "harness/thread_pool.hh"
#include "serve/service/sim_request.hh"

namespace laperm {
namespace serve {

struct ServiceOptions
{
    unsigned jobs = 0;              ///< 0 = ThreadPool::defaultJobs()
    std::size_t queueCapacity = 64; ///< queued + running admission bound
    std::uint64_t timeoutMs = 120000; ///< per-request waiter bound
    std::string cacheDir;           ///< empty = cacheRootDir()
    std::string fingerprint;        ///< empty = simFingerprint()
    /**
     * Test/bench hook: sleep this long inside each execution so
     * in-flight overlap (dedup, shedding, timeouts) can be forced
     * deterministically. Zero in production.
     */
    std::uint64_t testExecDelayMs = 0;
};

/** Counter snapshot; field order here == wire order of `stats`. */
struct ServiceMetrics
{
    std::uint64_t requests = 0;   ///< run requests accepted for processing
    std::uint64_t executed = 0;   ///< simulations actually run
    std::uint64_t cacheHits = 0;  ///< total = memory + shared tier
    std::uint64_t cacheMisses = 0; ///< executions triggered by a miss
    /**
     * Tier breakdown of cacheHits (harness TieredResultCache): memory
     * hits were stored or promoted by this process; shared hits came
     * off the shared disk tier — i.e. another worker (or a previous
     * incarnation of this one) executed the simulation. Non-zero
     * shared hits are the cluster's cross-worker dedup at work.
     */
    std::uint64_t cacheMemHits = 0;
    std::uint64_t cacheSharedHits = 0;
    std::uint64_t deduped = 0;    ///< joined an in-flight execution
    std::uint64_t shed = 0;       ///< rejected by admission control
    std::uint64_t timeouts = 0;   ///< waiters that gave up
    std::uint64_t errors = 0;     ///< invalid requests / failed runs
    std::uint64_t queueDepth = 0; ///< gauge: queued + running now
    std::uint64_t queueDepthPeak = 0;
    std::uint64_t queueUs = 0;    ///< total enqueue->start wait
    std::uint64_t execUs = 0;     ///< total simulation wall time
    std::uint64_t totalUs = 0;    ///< total request latency (all paths)

    /** `"requests":N,...` fragment, fixed field order. */
    std::string jsonFields() const;

    /** Two-column "metric\tvalue" TSV, same order, trailing newline. */
    std::string toTsv() const;
};

enum class RunStatus
{
    Ok,
    Shed,    ///< admission queue full -> structured overload response
    Timeout, ///< waiter bound exceeded; execution continues
    Error,   ///< invalid request or failed execution
};

struct RunOutcome
{
    RunStatus status = RunStatus::Error;
    bool cached = false;  ///< served from the on-disk result cache
    bool deduped = false; ///< joined an execution another caller owns
    std::string key;      ///< content key (empty on parse-level errors)
    std::string payload;  ///< canonical ResultRecord line when Ok
    std::string error;    ///< diagnostic when status == Error
};

class SimService
{
  public:
    explicit SimService(ServiceOptions opts);

    /** Blocks until every in-flight execution has drained. */
    ~SimService();

    SimService(const SimService &) = delete;
    SimService &operator=(const SimService &) = delete;

    /** Serve one request (cache / dedup / execute / shed). */
    RunOutcome run(const SimRequest &req);

    ServiceMetrics metrics() const;
    const std::string &fingerprint() const
    {
        return cache_.fingerprint();
    }

    /**
     * Drop the in-memory cache tier, as a worker restart would. The
     * shared disk tier survives; subsequent probes of keys it holds
     * count as shared-tier (cross-worker) hits. Test/bench hook.
     */
    void dropMemoryCache() { cache_.dropMemory(); }

  private:
    struct Flight
    {
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
        std::string payload;
        std::string error;
    };

    void execute(const SimRequest &req, const std::string &key,
                 const std::shared_ptr<Flight> &flight,
                 std::uint64_t enqueuedUs);

    ServiceOptions opts_;
    TieredResultCache cache_;
    std::unique_ptr<ThreadPool> pool_;

    mutable std::mutex mu_; ///< guards flights_ and pending_
    std::map<std::string, std::shared_ptr<Flight>> flights_;
    std::size_t pending_ = 0; ///< queued + running executions

    // Counters are atomics so connection threads never contend on mu_
    // just to bump a metric.
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> executed_{0};
    std::atomic<std::uint64_t> cacheHits_{0};
    std::atomic<std::uint64_t> cacheMisses_{0};
    std::atomic<std::uint64_t> cacheMemHits_{0};
    std::atomic<std::uint64_t> cacheSharedHits_{0};
    std::atomic<std::uint64_t> deduped_{0};
    std::atomic<std::uint64_t> shed_{0};
    std::atomic<std::uint64_t> timeouts_{0};
    std::atomic<std::uint64_t> errors_{0};
    std::atomic<std::uint64_t> queueDepthPeak_{0};
    std::atomic<std::uint64_t> queueUs_{0};
    std::atomic<std::uint64_t> execUs_{0};
    std::atomic<std::uint64_t> totalUs_{0};
};

} // namespace serve
} // namespace laperm

#endif // LAPERM_SERVE_SERVICE_SERVICE_HH
