/**
 * @file
 * Deterministic content hashing shared by the result cache
 * (harness/result_cache.hh) and the config subsystem
 * (sim/config_loader.hh). Lives in common/ so the simulator layer can
 * hash canonical config strings without reaching up into harness code.
 */

#ifndef LAPERM_COMMON_HASH_HH
#define LAPERM_COMMON_HASH_HH

#include <cstdint>
#include <string>

namespace laperm {

/** 64-bit FNV-1a over @p data starting from @p seed. */
std::uint64_t fnv1a64(const std::string &data, std::uint64_t seed);

/** 128-bit hex content key of a canonical request/config string. */
std::string contentKey(const std::string &canonical);

} // namespace laperm

#endif // LAPERM_COMMON_HASH_HH
