file(REMOVE_RECURSE
  "CMakeFiles/laperm_harness.dir/harness/experiment.cc.o"
  "CMakeFiles/laperm_harness.dir/harness/experiment.cc.o.d"
  "CMakeFiles/laperm_harness.dir/harness/table.cc.o"
  "CMakeFiles/laperm_harness.dir/harness/table.cc.o.d"
  "liblaperm_harness.a"
  "liblaperm_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laperm_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
