#include "kernels/thread_ctx.hh"

#include "common/log.hh"

namespace laperm {

ThreadCtx::ThreadCtx(std::uint32_t tb_index, std::uint32_t thread_index,
                     std::uint32_t threads_per_tb, std::uint32_t num_tbs)
    : tbIndex_(tb_index), threadIndex_(thread_index),
      threadsPerTb_(threads_per_tb), numTbs_(num_tbs)
{
}

void
ThreadCtx::reset(std::uint32_t tb_index, std::uint32_t thread_index,
                 std::uint32_t threads_per_tb, std::uint32_t num_tbs)
{
    tbIndex_ = tb_index;
    threadIndex_ = thread_index;
    threadsPerTb_ = threads_per_tb;
    numTbs_ = num_tbs;
    ops_.clear();
    launches_.clear();
}

void
ThreadCtx::ld(Addr addr, std::uint32_t bytes)
{
    Addr first = lineAddr(addr);
    Addr last = lineAddr(addr + (bytes ? bytes - 1 : 0));
    for (Addr line = first; line <= last; line += kLineBytes)
        ops_.push_back({OpKind::Load, 0, line, 0});
}

void
ThreadCtx::st(Addr addr, std::uint32_t bytes)
{
    Addr first = lineAddr(addr);
    Addr last = lineAddr(addr + (bytes ? bytes - 1 : 0));
    for (Addr line = first; line <= last; line += kLineBytes)
        ops_.push_back({OpKind::Store, 0, line, 0});
}

void
ThreadCtx::alu(std::uint32_t cycles)
{
    if (cycles == 0)
        return;
    // Merge back-to-back compute into one op to keep traces compact.
    if (!ops_.empty() && ops_.back().kind == OpKind::Alu) {
        ops_.back().aluCycles += cycles;
        return;
    }
    ops_.push_back({OpKind::Alu, cycles, 0, 0});
}

void
ThreadCtx::bar()
{
    ops_.push_back({OpKind::Bar, 0, 0, 0});
}

void
ThreadCtx::launch(LaunchRequest req)
{
    laperm_assert(req.program != nullptr, "launch without a program");
    laperm_assert(req.numTbs > 0 && req.threadsPerTb > 0,
                  "degenerate launch %ux%u", req.numTbs, req.threadsPerTb);
    std::uint32_t ix = static_cast<std::uint32_t>(launches_.size());
    launches_.push_back(std::move(req));
    ops_.push_back({OpKind::Launch, 0, 0, ix});
}

} // namespace laperm
