/**
 * @file
 * Simulation-serving daemon (DESIGN.md §10): listens on a Unix-domain
 * socket, runs simulation requests on a thread pool behind a
 * fingerprint-gated result cache, and answers with canonical result
 * records. Pair with laperm_submit.
 *
 * Usage:
 *   laperm_served [options]
 *     --socket PATH        Unix socket path (default laperm_served.sock)
 *     --jobs N             worker threads (default: hardware)
 *     --queue-capacity N   admission bound before shedding (default 64)
 *     --timeout-ms N       per-request waiter bound (default 120000)
 *     --cache-dir DIR      result cache root (default $LAPERM_CACHE_DIR
 *                          or ./cache)
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/log.hh"
#include "serve/server.hh"
#include "tools/cli_parse.hh"

using namespace laperm;
using namespace laperm::serve;

namespace {

std::atomic<bool> g_interrupted{false};

void
onSignal(int)
{
    g_interrupted.store(true);
}

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--socket PATH] [--jobs N] "
                 "[--queue-capacity N] [--timeout-ms N] "
                 "[--cache-dir DIR]\n",
                 argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    ServerOptions opts;

    auto next_arg = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    auto parse_u32 = [&](const char *s, const char *what) {
        std::uint32_t v = 0;
        if (!cli::parseU32(s, v)) {
            std::fprintf(stderr, "bad %s value '%s'\n", what, s);
            std::exit(2);
        }
        return v;
    };
    auto parse_u64 = [&](const char *s, const char *what) {
        std::uint64_t v = 0;
        if (!cli::parseU64(s, v)) {
            std::fprintf(stderr, "bad %s value '%s'\n", what, s);
            std::exit(2);
        }
        return v;
    };

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--socket")) {
            opts.socketPath = next_arg(i);
        } else if (!std::strcmp(a, "--jobs")) {
            opts.service.jobs = parse_u32(next_arg(i), "--jobs");
        } else if (!std::strcmp(a, "--queue-capacity")) {
            opts.service.queueCapacity =
                parse_u32(next_arg(i), "--queue-capacity");
        } else if (!std::strcmp(a, "--timeout-ms")) {
            opts.service.timeoutMs =
                parse_u64(next_arg(i), "--timeout-ms");
        } else if (!std::strcmp(a, "--cache-dir")) {
            opts.service.cacheDir = next_arg(i);
        } else {
            usage(argv[0]);
        }
    }
    if (opts.service.queueCapacity == 0) {
        std::fprintf(stderr, "--queue-capacity must be >= 1\n");
        return 2;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    Server server(opts);
    std::string err;
    if (!server.start(err)) {
        std::fprintf(stderr, "laperm_served: %s\n", err.c_str());
        return 1;
    }
    // stdout marker the smoke script and operators wait for.
    std::printf("laperm_served listening on %s (fingerprint %s)\n",
                server.socketPath().c_str(),
                server.service().fingerprint().c_str());
    std::fflush(stdout);

    // Poll so an OS signal (flag set by the handler) and a protocol
    // shutdown verb both end the same wait loop.
    while (!server.waitShutdown(200)) {
        if (g_interrupted.load())
            server.requestShutdown();
    }
    server.stop();

    const ServiceMetrics m = server.service().metrics();
    std::fprintf(stderr, "laperm_served: shut down cleanly\n%s",
                 m.toTsv().c_str());
    return 0;
}
