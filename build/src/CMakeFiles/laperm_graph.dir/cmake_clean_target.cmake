file(REMOVE_RECURSE
  "liblaperm_graph.a"
)
