/**
 * @file
 * Breadth-First Search with dynamic parallelism [29]: a level-
 * synchronous top-down BFS whose parent kernel expands low-degree
 * frontier vertices inline and launches a child kernel / TB group per
 * high-degree vertex — the canonical CDP pattern of Section III.
 */

#include "workloads/bfs.hh"

#include <algorithm>
#include <memory>

#include "common/log.hh"
#include "graph/algorithms.hh"
#include "kernels/kernel_program.hh"
#include "kernels/thread_ctx.hh"
#include "workloads/graph_common.hh"

namespace laperm {

namespace {

/** Immutable per-instance data shared by all BFS kernel programs. */
struct BfsData
{
    Csr csr;
    GraphLayout layout;
    BfsResult result;
    /** First worklist slot of each level's frontier. */
    std::vector<std::uint64_t> frontierStart;
    /** Vertex that first discovered v (kUnreached for none). */
    std::vector<std::uint32_t> discoverer;
    /** Index of v within its level's frontier. */
    std::vector<std::uint32_t> posInFrontier;
    std::uint32_t childFuncId = 0;
    std::uint32_t topFuncId = 0;
};

/** Emit the edge-expansion trace for one (vertex, edge) visit. */
void
emitEdgeVisit(ThreadCtx &ctx, const BfsData &d, std::uint32_t u,
              std::uint64_t edge, std::uint32_t next_level)
{
    const GraphLayout &l = d.layout;
    ctx.ld(l.colAddr(edge), 4);
    std::uint32_t v = d.csr.cols()[edge];
    // Duplicate-culling via the status mask [29]: a dense, heavily
    // shared structure — the main sibling-footprint overlap.
    ctx.ld(l.maskAddr(v), 1);
    ctx.alu(2);
    if (d.result.level[v] < next_level)
        return; // already visited: culled by the mask probe
    ctx.ld(l.vdataAddr(v), 4); // level[v]
    if (d.discoverer[v] == u && d.result.level[v] == next_level) {
        ctx.st(l.maskAddr(v), 1);  // mark visited
        ctx.st(l.vdataAddr(v), 4); // claim v
        ctx.st(l.worklistAddr(d.frontierStart[next_level] +
                              d.posInFrontier[v]),
               4); // append to the next frontier
    }
}

/** Child kernel: cooperatively expand one high-degree vertex. */
class BfsChildProgram : public KernelProgram
{
  public:
    BfsChildProgram(std::shared_ptr<const BfsData> data, std::uint32_t u)
        : data_(std::move(data)), u_(u)
    {}

    std::string name() const override { return "bfs_expand"; }
    std::uint32_t functionId() const override
    {
        return data_->childFuncId;
    }
    std::uint32_t regsPerThread() const override { return 24; }

    void
    emitThread(ThreadCtx &ctx) const override
    {
        const BfsData &d = *data_;
        const GraphLayout &l = d.layout;
        const std::uint64_t base = d.csr.offset(u_);
        const std::uint32_t deg = d.csr.degree(u_);
        const std::uint32_t stride = ctx.numTbs() * ctx.threadsPerTb();
        const std::uint32_t next_level = d.result.level[u_] + 1;

        // Parent-written launch parameters and the vertex's CSR row —
        // the shared parent-child footprint (broadcast within a warp).
        ctx.ld(l.paramAddr(u_), 16);
        ctx.ld(l.rowAddr(u_), 8);
        ctx.alu(4);
        for (std::uint64_t e = ctx.globalThreadIndex(); e < deg;
             e += stride) {
            emitEdgeVisit(ctx, d, u_, base + e, next_level);
        }
    }

  private:
    std::shared_ptr<const BfsData> data_;
    std::uint32_t u_;
};

/** Parent kernel: one level of the frontier. */
class BfsTopProgram : public KernelProgram
{
  public:
    BfsTopProgram(std::shared_ptr<const BfsData> data, std::uint32_t level)
        : data_(std::move(data)), level_(level)
    {}

    std::string name() const override { return "bfs_top"; }
    std::uint32_t functionId() const override { return data_->topFuncId; }

    void
    emitThread(ThreadCtx &ctx) const override
    {
        const BfsData &d = *data_;
        const GraphLayout &l = d.layout;
        const auto &frontier = d.result.frontiers[level_];
        const std::uint32_t i = ctx.globalThreadIndex();
        if (i >= frontier.size())
            return;
        const std::uint32_t u = frontier[i];
        const std::uint32_t deg = d.csr.degree(u);

        ctx.ld(l.worklistAddr(d.frontierStart[level_] + i), 4);
        ctx.ld(l.rowAddr(u), 8);
        ctx.ld(l.vdataAddr(u), 4);
        ctx.alu(6);

        if (deg > kSpawnDegree) {
            // Generate the child's arguments, then launch: the child
            // re-reads exactly what this thread just wrote.
            ctx.st(l.paramAddr(u), 16);
            ctx.launch({std::make_shared<BfsChildProgram>(data_, u),
                        childTbCount(deg), kChildTbThreads});
        } else {
            const std::uint64_t base = d.csr.offset(u);
            for (std::uint32_t j = 0; j < deg; ++j)
                emitEdgeVisit(ctx, d, u, base + j, level_ + 1);
        }
    }

  private:
    std::shared_ptr<const BfsData> data_;
    std::uint32_t level_;
};

} // namespace

std::string
BfsWorkload::app() const
{
    return "bfs";
}

std::string
BfsWorkload::input() const
{
    return input_;
}

void
BfsWorkload::setup(Scale scale, std::uint64_t seed)
{
    scale_ = scale;
    seed_ = seed;

    auto data = std::make_shared<BfsData>();
    data->csr = buildGraphInput(input_, scale, seed);
    data->layout.allocate(mem_, data->csr, false);
    data->result = bfs(data->csr, pickSource(data->csr));
    data->childFuncId = allocateFunctionId();
    data->topFuncId = allocateFunctionId();

    const std::uint32_t n = data->csr.numVertices();
    data->discoverer.assign(n, kUnreached);
    data->posInFrontier.assign(n, 0);
    data->frontierStart.assign(data->result.frontiers.size() + 1, 0);
    for (std::size_t lvl = 0; lvl < data->result.frontiers.size(); ++lvl) {
        const auto &front = data->result.frontiers[lvl];
        data->frontierStart[lvl + 1] =
            data->frontierStart[lvl] + front.size();
        for (std::size_t i = 0; i < front.size(); ++i)
            data->posInFrontier[front[i]] =
                static_cast<std::uint32_t>(i);
        for (std::uint32_t u : front) {
            for (std::uint32_t v : data->csr.neighbors(u)) {
                if (data->result.level[v] == lvl + 1 &&
                    data->discoverer[v] == kUnreached) {
                    data->discoverer[v] = u;
                }
            }
        }
    }

    std::uint32_t max_waves;
    switch (scale) {
      case Scale::Tiny: max_waves = 5; break;
      case Scale::Small: max_waves = 12; break;
      case Scale::Huge: max_waves = 24; break;
      default: max_waves = 20; break;
    }
    std::uint32_t levels = static_cast<std::uint32_t>(
        std::min<std::size_t>(data->result.frontiers.size(), max_waves));
    waves_.clear();
    for (std::uint32_t lvl = 0; lvl < levels; ++lvl) {
        std::uint32_t front =
            static_cast<std::uint32_t>(data->result.frontiers[lvl].size());
        std::uint32_t tbs =
            (front + kGraphTbThreads - 1) / kGraphTbThreads;
        waves_.push_back({std::make_shared<BfsTopProgram>(data, lvl), tbs,
                          kGraphTbThreads});
    }
}

} // namespace laperm
