/**
 * @file
 * Dispatch-trace recorder: captures every TB dispatch (uid, kernel,
 * placement, timing, lineage) via the Gpu dispatch hook and writes a
 * CSV — the raw material for scheduling-timeline visualizations like
 * the paper's Figure 4.
 */

#ifndef LAPERM_GPU_TRACE_HH
#define LAPERM_GPU_TRACE_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace laperm {

class Gpu;
class ThreadBlock;

/** One recorded TB dispatch. */
struct DispatchEvent
{
    TbUid uid;
    KernelId kernel;
    std::uint32_t tbIndex;
    SmxId smx;
    Cycle cycle;
    std::uint32_t priority;
    bool isDynamic;
    TbUid directParent; ///< kNoTb for host TBs
};

/**
 * Attaches to a Gpu's dispatch hooks and accumulates events. Any
 * number of recorders and other hooks may share a Gpu; each receives
 * every dispatch in attachment order.
 */
class DispatchTrace
{
  public:
    explicit DispatchTrace(Gpu &gpu);

    const std::vector<DispatchEvent> &events() const { return events_; }

    /** Write "uid,kernel,tbIndex,smx,cycle,priority,dynamic,parent". */
    bool writeCsv(const std::string &path) const;

  private:
    static void hook(void *ctx, const ThreadBlock &tb);

    std::vector<DispatchEvent> events_;
};

} // namespace laperm

#endif // LAPERM_GPU_TRACE_HH
