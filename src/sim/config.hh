/**
 * @file
 * GPU configuration modeled after the paper's Table I (NVIDIA K20c,
 * GK110, CUDA compute capability 3.5) plus the dynamic-parallelism and
 * LaPerm parameters from Sections II, IV and V.
 */

#ifndef LAPERM_SIM_CONFIG_HH
#define LAPERM_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace laperm {

/** Which dynamic-parallelism launch path the device models. */
enum class DynParModel
{
    CDP,  ///< CUDA Dynamic Parallelism: device kernels via KMU -> KDU.
    DTBL, ///< Dynamic Thread Block Launch: TB groups coalesced in KDU.
};

/** Thread-block scheduling policy (the subject of the paper). */
enum class TbPolicy
{
    RR,           ///< Baseline round-robin (Section III-B).
    TbPri,        ///< TB Prioritizing (Section IV-A).
    SmxBind,      ///< Prioritized SMX Binding (Section IV-B).
    AdaptiveBind, ///< Adaptive Prioritized SMX Binding (Section IV-C).
};

/** Warp scheduling discipline inside each SMX. */
enum class WarpPolicy
{
    GTO,     ///< Greedy-then-oldest (Table I default, [7]).
    LRR,     ///< Loose round-robin, for ablation.
    /**
     * TB-aware GTO: among ready warps, prefer those whose TB shares
     * the last-issued warp's direct parent (family grouping in the
     * spirit of [10]); the paper's Section IV-F notes LaPerm composes
     * with such warp schedulers.
     */
    TbAware,
};

/** Stage-3 stealing discipline for Adaptive-Bind (ablation knob). */
enum class BackupPolicy
{
    Recorded, ///< Paper's scheme: record and drain one backup SMX.
    Random,   ///< Steal from a random non-empty SMX each time.
};

/**
 * How the device advances simulated time (DESIGN.md §11). Both modes
 * produce byte-identical statistics and artifacts; Dense is kept as the
 * differential-testing reference for the event-driven hot path.
 */
enum class TickMode
{
    Dense, ///< Reference loop: poll every active component every cycle.
    Event, ///< Event-driven: skip to the next scheduled wakeup.
};

const char *toString(DynParModel model);
const char *toString(TbPolicy policy);
const char *toString(WarpPolicy policy);
const char *toString(TickMode mode);

/**
 * Full device configuration. Defaults reproduce Table I.
 */
struct GpuConfig
{
    // --- Compute resources (Table I) ---
    std::uint32_t numSmx = 13;
    std::uint32_t maxThreadsPerSmx = 2048;
    std::uint32_t maxTbsPerSmx = 16;
    std::uint32_t regsPerSmx = 65536;
    std::uint32_t smemPerSmx = 32 * 1024;
    std::uint32_t warpSchedulersPerSmx = 4;
    WarpPolicy warpPolicy = WarpPolicy::GTO;

    /** SMXs sharing one L1 (Section IV-B cluster note); 1 = per-SMX L1. */
    std::uint32_t smxPerCluster = 1;

    // --- Memory hierarchy (Table I) ---
    std::uint32_t l1Size = 32 * 1024;
    std::uint32_t l1Assoc = 4;
    Cycle l1HitLatency = 28;

    std::uint32_t l2Size = 1536 * 1024;
    std::uint32_t l2Assoc = 16;
    std::uint32_t l2Banks = 6;
    Cycle l2HitLatency = 120;      ///< total load-to-use on L1 miss/L2 hit
    Cycle l2ServiceInterval = 2;   ///< per-bank occupancy per access

    std::uint32_t dramChannels = 5; ///< K20c: 5 x 64-bit GDDR5 controllers
    std::uint32_t dramBanksPerChannel = 8;
    Cycle dramLatency = 230;        ///< additional cycles beyond L2 on miss
    /**
     * Per-bank occupancy per 128B access. 40 banks / 18 cycles ~= 2.2
     * lines/cycle ~= 208 GB/s at the 706 MHz core clock (K20c GDDR5).
     */
    Cycle dramServiceInterval = 18;

    // --- Simulator maintenance (timing-invisible; DESIGN.md §11) ---
    /** Cycles between amortized MSHR garbage-collection sweeps. */
    Cycle mshrTrimInterval = 4096;
    /** MSHR entry count below which a trim sweep is skipped. */
    std::uint32_t mshrTrimWatermark = 16;

    // --- Kernel management (Section II-B) ---
    std::uint32_t kduEntries = 32; ///< max concurrent kernels

    // --- Execution timing ---
    Cycle barLatency = 4;      ///< cost of releasing a TB barrier
    Cycle launchIssueCycles = 40; ///< SMX-side cost of issuing a launch
    /**
     * Consecutive independent load instructions a warp issues before
     * stalling (compiler-scheduled memory-level parallelism).
     */
    std::uint32_t warpMlpWindow = 4;

    // --- Dynamic parallelism (Sections II-C, IV-D, V-A) ---
    DynParModel dynParModel = DynParModel::DTBL;
    /** Device-kernel launch latency for CDP (methodology of [15]/[16]). */
    Cycle cdpLaunchLatency = 5000;
    /** TB-group launch latency for DTBL (modeled in-simulator, [16]). */
    Cycle dtblLaunchLatency = 350;

    // --- TB scheduling / LaPerm (Section IV) ---
    TbPolicy tbPolicy = TbPolicy::RR;
    /** Maximum nested-launch priority level L (clamped beyond this). */
    std::uint32_t maxPriorityLevels = 4;
    /** On-chip SRAM priority-queue entries per SMX (3KB / 24B = 128). */
    std::uint32_t onchipQueueEntries = 128;
    /** Shared level-0 queue entries (768B / 24B = 32). */
    std::uint32_t sharedQueueEntries = 32;
    /** Extra latency to fetch an overflowed queue entry from DRAM. */
    Cycle overflowFetchLatency = 350;
    BackupPolicy backupPolicy = BackupPolicy::Recorded;

    // --- Contention-based TB throttling (Section IV-F, after [12]) ---
    /** Dynamically reduce resident TBs when the L1 thrashes. */
    bool tbThrottleEnabled = false;
    /** L1 accesses between throttle evaluations. */
    std::uint64_t throttleWindow = 4096;
    /** Miss rate above which residency shrinks by one TB. */
    double throttleHighMiss = 0.90;
    /** Miss rate below which residency grows back by one TB. */
    double throttleLowMiss = 0.70;
    /** Floor on the throttled TB residency. */
    std::uint32_t throttleMinTbs = 4;

    /** Deterministic seed forwarded to workload generators. */
    std::uint64_t seed = 1;

    /**
     * Simulation-core time-advance strategy (DESIGN.md §11). Not part
     * of the serving-layer request canonicalization: both modes yield
     * byte-identical results, so the cache key must not split on it.
     */
    TickMode tickMode = TickMode::Event;

    /** Effective on-chip queue capacity per SMX for the active model. */
    std::uint32_t effectiveOnchipEntries() const;

    /**
     * Describe the first configuration error, or return an empty
     * string when the configuration is valid. Non-fatal form used by
     * the serving layer, which must reject bad requests with an error
     * response instead of terminating the daemon.
     */
    std::string check() const;

    /** Sanity-check the configuration; fatal() on user error. */
    void validate() const;

    /** One-line summary for logs. */
    std::string summary() const;
};

} // namespace laperm

#endif // LAPERM_SIM_CONFIG_HH
