#include "harness/table.hh"

#include <cinttypes>
#include <cstdio>

#include "common/log.hh"

namespace laperm {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> row)
{
    laperm_assert(row.size() == headers_.size(),
                  "row has %zu cells, table has %zu columns", row.size(),
                  headers_.size());
    rows_.push_back(std::move(row));
}

void
Table::addRule()
{
    rows_.emplace_back();
}

void
Table::print() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto print_rule = [&]() {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            std::printf("+");
            for (std::size_t i = 0; i < width[c] + 2; ++i)
                std::printf("-");
        }
        std::printf("+\n");
    };
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < headers_.size(); ++c)
            std::printf("| %-*s ", static_cast<int>(width[c]),
                        row[c].c_str());
        std::printf("|\n");
    };

    print_rule();
    print_row(headers_);
    print_rule();
    for (const auto &row : rows_) {
        if (row.empty())
            print_rule();
        else
            print_row(row);
    }
    print_rule();
}

std::string
fmtPct(double fraction, int decimals)
{
    return logFormat("%.*f%%", decimals, fraction * 100.0);
}

std::string
fmtF(double value, int decimals)
{
    return logFormat("%.*f", decimals, value);
}

std::string
fmtU(std::uint64_t value)
{
    return logFormat("%" PRIu64, value);
}

} // namespace laperm
