/**
 * @file
 * Section IV-D: impact of the device-launch latency on LaPerm. The
 * launch latency (i) delays when child TBs become dispatchable,
 * (ii) widens the parent-child time gap and (iii) can kill the
 * exploitable locality. We sweep the TB-group launch latency on the
 * DTBL path — whose KDU visibility is unrestricted, so latency is the
 * only variable — and also show the CDP column, where the 32-entry
 * KDU concurrency limit caps the benefit regardless of latency
 * (the paper's explanation of CDP's smaller gains).
 */

#include <cstdio>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/table.hh"
#include "workloads/registry.hh"

using namespace laperm;

int
main(int argc, char **argv)
{
    setVerbose(false);
    Scale scale = argc > 1 ? scaleFromString(argv[1])
                           : scaleFromEnv(Scale::Small);

    const char *names[] = {"bfs-citation", "clr-cage", "sssp-citation"};
    const Cycle latencies[] = {200, 2000, 10000, 50000};

    std::printf("Section IV-D: launch-latency impact on LaPerm "
                "(DTBL path, scale '%s')\n\n",
                toString(scale));

    Table t({"workload", "launch latency", "RR IPC", "LaPerm IPC",
             "LaPerm speedup", "LaPerm L1"});
    for (const char *name : names) {
        auto w = createWorkload(name);
        w->setup(scale, 1);
        for (Cycle lat : latencies) {
            GpuConfig cfg = paperConfig();
            cfg.dynParModel = DynParModel::DTBL;
            cfg.dtblLaunchLatency = lat;
            cfg.tbPolicy = TbPolicy::RR;
            RunResult rr = runOne(*w, cfg);
            cfg.tbPolicy = TbPolicy::AdaptiveBind;
            RunResult lp = runOne(*w, cfg);
            t.addRow({name, fmtU(lat), fmtF(rr.ipc), fmtF(lp.ipc),
                      fmtF(rr.ipc > 0 ? lp.ipc / rr.ipc : 0.0),
                      fmtPct(lp.l1HitRate)});
        }
        t.addRule();
    }
    t.print();

    // The CDP contrast: even a fast launch path gains little while the
    // KDU limits the dynamic kernels visible to the scheduler.
    std::printf("\nCDP contrast (KDU-limited visibility, 32 entries):\n");
    Table c({"workload", "CDP latency", "RR IPC", "LaPerm IPC",
             "LaPerm speedup"});
    {
        auto w = createWorkload("bfs-citation");
        w->setup(scale, 1);
        for (Cycle lat : {Cycle(200), Cycle(5000), Cycle(20000)}) {
            GpuConfig cfg = paperConfig();
            cfg.dynParModel = DynParModel::CDP;
            cfg.cdpLaunchLatency = lat;
            cfg.tbPolicy = TbPolicy::RR;
            RunResult rr = runOne(*w, cfg);
            cfg.tbPolicy = TbPolicy::AdaptiveBind;
            RunResult lp = runOne(*w, cfg);
            c.addRow({"bfs-citation", fmtU(lat), fmtF(rr.ipc),
                      fmtF(lp.ipc),
                      fmtF(rr.ipc > 0 ? lp.ipc / rr.ipc : 0.0)});
        }
    }
    c.print();
    std::printf("\npaper: low launch latency lets LaPerm exploit "
                "parent-child temporal locality; long latencies and "
                "the CDP KDU limit erode the benefit (Section IV-D).\n");
    return 0;
}
