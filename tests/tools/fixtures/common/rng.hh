// sim-lint fixture: stands in for src/common/rng.hh, the one file
// allowed to reference stdlib RNG machinery (it exists to replace it).
// Not compiled — parsed by test_sim_lint.cc.
#include <random>

struct FixtureRng
{
    // The real wrapper documents why std::mt19937 is rejected; the
    // token may appear here without tripping banned-rng.
    std::mt19937 legacyCompat;
};
