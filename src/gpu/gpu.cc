#include "gpu/gpu.hh"

#include <algorithm>

#include "common/log.hh"

namespace laperm {

Gpu::Gpu(const GpuConfig &cfg)
    : cfg_(cfg), mem_(cfg), kdu_(cfg.kduEntries)
{
    cfg_.validate();
    sched_ = TbScheduler::create(cfg_, *this);
    launcher_ = std::make_unique<Launcher>(cfg_, kdu_, *sched_, stats_,
                                           undispatchedTbs_, hub_);
    for (SmxId i = 0; i < cfg_.numSmx; ++i)
        smxs_.push_back(std::make_unique<Smx>(i, cfg_, mem_, *this));
    stats_.smx.resize(cfg_.numSmx);
    activeSmxs_.reserve(cfg_.numSmx);
    smxActive_.assign(cfg_.numSmx, false);
    smxArmedAt_.assign(cfg_.numSmx, kNoCycle);
}

Gpu::~Gpu() = default;

void
Gpu::addDispatchHook(DispatchHook hook, void *ctx)
{
    dispatchHooks_.emplace_back(hook, ctx);
}

void
Gpu::setLocalityTracker(obs::MemObserver *tracker)
{
    mem_.setLocalityTracker(tracker);
}

void
Gpu::launchHostKernel(const LaunchRequest &req)
{
    launcher_->hostLaunch(req, cycle_);
}

bool
Gpu::idle() const
{
    return undispatchedTbs_ == 0 && activeTbs_ == 0 && launcher_->idle();
}

void
Gpu::noteSmxBusy(SmxId id)
{
    if (smxActive_[id])
        return;
    smxActive_[id] = true;
    activeSmxs_.insert(
        std::lower_bound(activeSmxs_.begin(), activeSmxs_.end(), id),
        id);
}

void
Gpu::noteSmxDrained(SmxId id)
{
    smxActive_[id] = false;
    auto it =
        std::lower_bound(activeSmxs_.begin(), activeSmxs_.end(), id);
    laperm_assert(it != activeSmxs_.end() && *it == id,
                  "draining an inactive SMX");
    activeSmxs_.erase(it);
}

void
Gpu::tick()
{
    bool launched = launcher_->tick(cycle_);
    bool dispatched = sched_->dispatchOne(cycle_);
    bool progress = launched || dispatched;

    // Tick only SMXs with resident TBs (ticking a drained SMX is a
    // no-op), compacting ones that drained this cycle. dispatchOne
    // above is the only way an SMX gains work, so the list is stable
    // during this loop.
    std::size_t out = 0;
    for (std::size_t i = 0; i < activeSmxs_.size(); ++i) {
        const SmxId id = activeSmxs_[i];
        Smx &smx = *smxs_[id];
        progress |= smx.tick(cycle_);
        if (smx.drained())
            smxActive_[id] = false;
        else
            activeSmxs_[out++] = id;
    }
    activeSmxs_.resize(out);

    // Periodically drop MSHR entries no cache client can merge with
    // anymore. cycle_ lower-bounds every future access timestamp (LSU
    // issue and downstream latencies only add to it), so trimming at
    // the device clock is invisible to the timing model — unlike
    // trimming at access time, where out-of-order L2 timestamps would
    // turn some merges into misses.
    if (cycle_ >= nextMshrTrimAt_) {
        mem_.trimMshrs(cycle_);
        nextMshrTrimAt_ = cycle_ + cfg_.mshrTrimInterval;
    }

    if (progress) {
        ++cycle_;
        return;
    }

    // Nothing happened: jump to the next event (warp wakeup, launch
    // readiness, or an overflow-fetch completion).
    Cycle next = kNoCycle;
    for (SmxId id : activeSmxs_)
        next = std::min(next, smxs_[id]->nextEventAt(cycle_));
    next = std::min(next, launcher_->nextReadyAt(cycle_));
    next = std::min(next, sched_->nextReadyAt(cycle_));
    if (next == kNoCycle || next <= cycle_)
        ++cycle_;
    else
        cycle_ = next;
}

void
Gpu::runToIdle(Cycle max_cycles)
{
    if (cfg_.tickMode == TickMode::Event) {
        runEventLoop(max_cycles);
        return;
    }
    Cycle start = cycle_;
    while (!idle()) {
        tick();
        if (cycle_ - start > max_cycles) {
            laperm_panic("simulation exceeded %llu cycles "
                         "(undispatched=%llu active=%llu pending=%zu)",
                         static_cast<unsigned long long>(max_cycles),
                         static_cast<unsigned long long>(undispatchedTbs_),
                         static_cast<unsigned long long>(activeTbs_),
                         launcher_->kmu().size());
        }
    }
}

void
Gpu::runUntil(Cycle stop, Cycle max_cycles)
{
    laperm_assert(stop != kNoCycle, "runUntil without a stop cycle");
    if (cfg_.tickMode == TickMode::Event) {
        runEventLoop(max_cycles, stop);
        return;
    }
    const Cycle start = cycle_;
    while (!idle() && cycle_ < stop) {
        tick();
        if (cycle_ - start > max_cycles) {
            laperm_panic("simulation exceeded %llu cycles "
                         "(undispatched=%llu active=%llu pending=%zu)",
                         static_cast<unsigned long long>(max_cycles),
                         static_cast<unsigned long long>(undispatchedTbs_),
                         static_cast<unsigned long long>(activeTbs_),
                         launcher_->kmu().size());
        }
    }
    // A no-progress jump may have overshot the slice boundary; the gap
    // it skipped is eventless, so resuming at stop is timing-neutral
    // (the next slice recomputes the very same jump).
    if (cycle_ > stop)
        cycle_ = stop;
}

void
Gpu::advanceTo(Cycle cycle)
{
    laperm_assert(idle(), "advanceTo with live work");
    laperm_assert(cycle >= cycle_, "advanceTo moving backwards");
    cycle_ = cycle;
    if (cfg_.tickMode == TickMode::Event) {
        // Orphaned wakeups from the drained run would surface as batch
        // times in the past; reset all event-mode state so the next
        // slice re-arms from the new clock.
        eq_.clear();
        feArmedAt_ = kNoCycle;
        maintArmedAt_ = kNoCycle;
        std::fill(smxArmedAt_.begin(), smxArmedAt_.end(), kNoCycle);
        feOnNextEvent_ = false;
    }
}

std::uint64_t
Gpu::residentThreads() const
{
    std::uint64_t total = 0;
    for (SmxId id : activeSmxs_)
        total += smxs_[id]->threadsUsed();
    return total;
}

void
Gpu::armFrontEnd(Cycle cycle)
{
    // The front end is due at every non-maintenance batch, so it is a
    // scalar deadline rather than a queued event (kNoCycle == unarmed).
    feArmedAt_ = std::min(feArmedAt_, cycle);
}

void
Gpu::armSmx(SmxId id, Cycle cycle)
{
    if (cycle >= smxArmedAt_[id])
        return;
    smxArmedAt_[id] = cycle;
    eq_.schedule(cycle, SimEventKind::SmxTick, id);
}

void
Gpu::armMaintenance(Cycle cycle)
{
    // Like the front end: one deadline, never two in flight.
    maintArmedAt_ = std::min(maintArmedAt_, cycle);
}

/**
 * Event-driven replacement for the dense loop. Correctness hinges on
 * the front end (Launcher::tick + TbScheduler::dispatchOne) running at
 * exactly the cycles the dense loop visits — failed dispatch attempts
 * have observable side effects (SMX-Bind cursor rotation, KDU-full
 * stall accounting) — so its arming rules replicate the dense visit
 * set: the successor of every progress cycle, and on a no-progress
 * cycle the same jump target the dense loop computes. SMX ticks with no
 * eligible warp are side-effect-free, so SMXs park on the queue until
 * their next wakeup instead of being polled.
 */
void
Gpu::runEventLoop(Cycle max_cycles, Cycle stop)
{
    const Cycle start = cycle_;
    armFrontEnd(cycle_);
    armMaintenance(std::max(cycle_, nextMshrTrimAt_));

    while (!idle()) {
        // The next batch is the earliest of the two scalar deadlines
        // and the queue of parked SMXs.
        const Cycle smxAt = eq_.empty() ? kNoCycle : eq_.top().cycle;
        const Cycle t =
            std::min({feArmedAt_, smxAt, maintArmedAt_});
        laperm_assert(t != kNoCycle, "no next event with live work");
        if (t >= stop) {
            // Slice boundary: every pending wakeup is at or past stop,
            // so pausing here and re-arming on re-entry (the top-of-
            // function arms) replays the dense loop's visit at stop.
            cycle_ = stop;
            return;
        }
        bool progress = false;

        // Front-end phase: due when armed for this cycle, or — lazy
        // wake (see feOnNextEvent_) — at the first batch with an SMX
        // event. A maintenance-only batch is a cycle the dense loop
        // never visits, so it must not attract a front-end visit.
        // When both front-end halves prove their calls at t would
        // observe and mutate nothing (no launch admittable, scheduler
        // dispatch memo valid), the calls themselves are elided; the
        // post-batch arming below still runs so SMX-driven progress
        // (completions invalidate the memo) re-engages the front end
        // at t+1 exactly as the dense loop would.
        const bool fe_due =
            feArmedAt_ == t || (feOnNextEvent_ && smxAt == t);
        if (fe_due) {
            feOnNextEvent_ = false;
            if (feArmedAt_ == t)
                feArmedAt_ = kNoCycle;
            if (!launcher_->visitIsNoop(t) || !sched_->visitIsNoop(t)) {
                bool launched = launcher_->tick(t);
                bool dispatched = sched_->dispatchOne(t);
                progress |= launched || dispatched;
            }
        }

        // SMX phase: pop every tick due at t, in ascending SMX id
        // (the queue key), replaying the dense loop's visit order.
        while (!eq_.empty() && eq_.top().cycle == t) {
            const SimEvent ev = eq_.pop();
            const SmxId id = ev.id;
            if (smxArmedAt_[id] != ev.cycle)
                continue; // stale: re-armed for an earlier cycle
            smxArmedAt_[id] = kNoCycle;
            Smx &smx = *smxs_[id];
            progress |= smx.tick(t);
            if (smx.drained()) {
                noteSmxDrained(id);
            } else {
                const Cycle next = smx.nextEventAt(t + 1);
                if (next != kNoCycle)
                    armSmx(id, next);
            }
        }

        if (maintArmedAt_ == t) {
            maintArmedAt_ = kNoCycle;
            // See the dense loop for why trimming at the device clock
            // is invisible to the timing model; because it is, the
            // exact trim cycles may differ between modes.
            mem_.trimMshrs(t);
            nextMshrTrimAt_ = t + cfg_.mshrTrimInterval;
            armMaintenance(nextMshrTrimAt_);
        }

        if (fe_due) {
            if (progress) {
                // The dense loop visits t+1 next (the "echo" visit:
                // it usually finds no progress and jumps away). When
                // both front-end halves prove their calls at t+1 would
                // observe and mutate nothing — no launch admittable by
                // then, scheduler dispatch memo still valid — the echo
                // can be elided outright: its SMX ticks are no-ops as
                // well (an SMX due at t+1 would be armed, and the
                // batch would happen anyway). The jump the dense loop
                // computes out of that visit is replicated below with
                // the same nextReadyAt calls, evaluated at t+1; its
                // SMX component is the queue top, via the lazy wake.
                if (launcher_->visitIsNoop(t + 1) &&
                    sched_->visitIsNoop(t + 1)) {
                    const Cycle target =
                        std::min(launcher_->nextReadyAt(t + 1),
                                 sched_->nextReadyAt(t + 1));
                    if (target != kNoCycle)
                        armFrontEnd(target);
                    feOnNextEvent_ = true;
                } else {
                    armFrontEnd(t + 1);
                }
            } else {
                // The dense loop's no-progress jump. Its SMX component
                // (min over active SMXs' nextEventAt) is exactly the
                // earliest armed SMX event, so the queue supplies it
                // via the lazy wake; only the launcher/scheduler
                // delays need naming here. Both calls are kept even
                // though only their min is used: the scheduler's
                // nextReadyAt prunes internal state, and dense/event
                // parity requires identical call sequences.
                const Cycle target =
                    std::min(launcher_->nextReadyAt(t),
                             sched_->nextReadyAt(t));
                if (target != kNoCycle && target > t) {
                    armFrontEnd(target);
                } else if (!eq_.empty()) {
                    // No nameable delay, but parked SMX events exist:
                    // the lazy wake below re-engages the front end.
                } else {
                    // The dense loop crawls (++cycle) when the jump
                    // has no target: progress may need repeated
                    // front-end visits (SMX-Bind examines one SMX per
                    // cycle, rotating its cursor on failure). With no
                    // SMX events queued, replicate the crawl or the
                    // front end would starve.
                    armFrontEnd(t + 1);
                }
                feOnNextEvent_ = true;
            }
        }

        cycle_ = t + 1;
        if (cycle_ - start > max_cycles) {
            laperm_panic("simulation exceeded %llu cycles "
                         "(undispatched=%llu active=%llu pending=%zu)",
                         static_cast<unsigned long long>(max_cycles),
                         static_cast<unsigned long long>(undispatchedTbs_),
                         static_cast<unsigned long long>(activeTbs_),
                         launcher_->kmu().size());
        }
    }
}

void
Gpu::runWaves(const std::vector<LaunchRequest> &waves)
{
    for (const LaunchRequest &wave : waves) {
        launchHostKernel(wave);
        runToIdle();
    }
}

const GpuStats &
Gpu::stats()
{
    stats_.cycles = cycle_;
    for (SmxId i = 0; i < cfg_.numSmx; ++i)
        stats_.smx[i] = smxs_[i]->stats();
    mem_.exportStats(stats_);
    return stats_;
}

bool
Gpu::fits(SmxId smx, const DispatchUnit &unit) const
{
    return smxs_[smx]->canAccommodate(unit.threadsPerTb, unit.regsPerTb,
                                      unit.smemPerTb);
}

void
Gpu::dispatchTb(DispatchUnit &unit, SmxId smx, Cycle now)
{
    laperm_assert(!unit.exhausted(), "dispatching an exhausted unit");
    const std::uint32_t ix = unit.nextTb++;

    ThreadBlock *tb = smxs_[smx]->acquireTb();
    buildThreadBlockInto(*tb, *unit.program, ix, unit.threadsPerTb,
                         unit.count, ctxScratch_);
    tb->uid = nextTbUid_++;
    tb->kernel = unit.kernel;
    tb->priority = unit.priority;
    tb->directParent = unit.directParent;
    tb->isDynamic = unit.directParent != kNoTb;
    tb->tenant = unit.tenant;

    ++unit.kernel->dispatchedTbs;
    laperm_assert(undispatchedTbs_ > 0, "undispatched TB underflow");
    --undispatchedTbs_;
    ++activeTbs_;

    tb->smx = smx;
    tb->dispatchCycle = now;
    for (const auto &[hook, ctx] : dispatchHooks_)
        hook(ctx, *tb);
    if (hub_.enabled()) {
        hub_.tbDispatch({now, tb->uid, tb->kernel->id, tb->tbIndex, smx,
                         tb->priority, tb->isDynamic, tb->directParent,
                         now, tb->tenant});
    }
    smxs_[smx]->acceptTb(tb, now);
    // A TB whose warps are all empty completes inside acceptTb; only
    // track the SMX while it actually holds work.
    if (!smxs_[smx]->drained()) {
        noteSmxBusy(smx);
        // Same-cycle hand-off: the SMX-tick phase of this very cycle
        // must see the new TB (the dense loop ticks SMXs after
        // dispatch).
        if (cfg_.tickMode == TickMode::Event)
            armSmx(smx, now);
    }
}

void
Gpu::deviceLaunch(const LaunchRequest &req, const ThreadBlock &parent,
                  Cycle now)
{
    if (req.threadsPerTb > cfg_.maxThreadsPerSmx)
        laperm_fatal("device launch TB of %u threads exceeds SMX limit",
                     req.threadsPerTb);
    launcher_->deviceLaunch(req, parent, now);
}

void
Gpu::tbCompleted(ThreadBlock &tb, Cycle now)
{
    if (hub_.enabled()) {
        hub_.tbRetire({now, tb.uid, tb.kernel->id, tb.tbIndex, tb.smx,
                       tb.priority, tb.isDynamic, tb.directParent,
                       tb.dispatchCycle, tb.tenant});
    }
    kdu_.tbFinished(tb.kernel);
    laperm_assert(activeTbs_ > 0, "active TB underflow");
    --activeTbs_;
    // The SMX just freed this TB's resources; a memoized scheduler
    // must retry its dispatch scan.
    sched_->noteCapacityFreed();
}

void
Gpu::dispatchCapacityFreed()
{
    sched_->noteCapacityFreed();
}

} // namespace laperm
