# Empty dependencies file for bench_smx_utilization.
# This may be replaced when dependencies are built.
