/**
 * @file
 * Wall-clock self-benchmark of the parallel sweep executor: runs the
 * full workload matrix serially (1 worker) and in parallel (LAPERM_JOBS
 * or 4 workers), verifies that both produce identical results and a
 * byte-identical TSV cache, and writes BENCH_sweep.json with cells/sec
 * for each setting so the speedup is tracked across PRs.
 *
 * Environment:
 *   LAPERM_BENCH_SCALE  tiny | small | full (default tiny)
 *   LAPERM_JOBS         parallel worker count (default 4)
 *
 * Exits nonzero if the parallel sweep diverges from the serial one.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "workloads/registry.hh"

using namespace laperm;

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

bool
sameResults(const std::vector<RunResult> &a,
            const std::vector<RunResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const RunResult &x = a[i];
        const RunResult &y = b[i];
        if (x.workload != y.workload || x.model != y.model ||
            x.policy != y.policy || x.ipc != y.ipc ||
            x.l1HitRate != y.l1HitRate || x.l2HitRate != y.l2HitRate ||
            x.cycles != y.cycles ||
            x.smxUtilization != y.smxUtilization ||
            x.smxImbalance != y.smxImbalance ||
            x.boundFraction != y.boundFraction ||
            x.queueOverflows != y.queueOverflows ||
            x.kduFullStalls != y.kduFullStalls) {
            return false;
        }
    }
    return true;
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main()
{
    setVerbose(false);
    // The sweep must actually simulate (and write a fresh cache), not
    // read a previous run's TSV.
    unsetenv("LAPERM_NO_CACHE");

    const Scale scale = [] {
        if (const char *env = std::getenv("LAPERM_BENCH_SCALE"))
            return scaleFromString(env);
        return Scale::Tiny;
    }();
    const std::uint64_t seed = 1;
    unsigned jobs = 4;
    if (const char *env = std::getenv("LAPERM_JOBS")) {
        long v = std::atol(env);
        if (v > 0)
            jobs = static_cast<unsigned>(v);
    }

    const std::vector<std::string> &names = workloadNames();
    const std::string cache = sweepCachePath(scale, seed);
    const std::string serialCopy = cache + ".serial";

    // Serial reference sweep.
    std::remove(cache.c_str());
    auto t0 = std::chrono::steady_clock::now();
    auto serial = runMatrix(names, scale, seed, true, 1);
    const double serialSec = secondsSince(t0);
    std::rename(cache.c_str(), serialCopy.c_str());

    // Parallel sweep into a fresh cache file.
    t0 = std::chrono::steady_clock::now();
    auto parallel = runMatrix(names, scale, seed, true, jobs);
    const double parallelSec = secondsSince(t0);

    const bool resultsIdentical = sameResults(serial, parallel);
    const bool tsvIdentical =
        !readFile(cache).empty() && readFile(cache) == readFile(serialCopy);
    std::remove(serialCopy.c_str());

    const double cells = static_cast<double>(serial.size());
    const double speedup =
        parallelSec > 0.0 ? serialSec / parallelSec : 0.0;

    std::ofstream json("BENCH_sweep.json");
    json << "{\n"
         << "  \"bench\": \"harness_sweep_throughput\",\n"
         << "  \"scale\": \"" << toString(scale) << "\",\n"
         << "  \"seed\": " << seed << ",\n"
         << "  \"workloads\": " << names.size() << ",\n"
         << "  \"cells\": " << serial.size() << ",\n"
         << "  \"hardware_threads\": "
         << std::thread::hardware_concurrency() << ",\n"
         << "  \"jobs_serial\": 1,\n"
         << "  \"seconds_serial\": " << serialSec << ",\n"
         << "  \"cells_per_sec_serial\": " << cells / serialSec << ",\n"
         << "  \"jobs_parallel\": " << jobs << ",\n"
         << "  \"seconds_parallel\": " << parallelSec << ",\n"
         << "  \"cells_per_sec_parallel\": " << cells / parallelSec
         << ",\n"
         << "  \"speedup\": " << speedup << ",\n"
         << "  \"results_identical\": "
         << (resultsIdentical ? "true" : "false") << ",\n"
         << "  \"tsv_identical\": " << (tsvIdentical ? "true" : "false")
         << "\n"
         << "}\n";
    json.close();

    std::printf("sweep: %zu cells, scale %s\n", serial.size(),
                toString(scale));
    std::printf("  1 job : %.3f s  (%.1f cells/s)\n", serialSec,
                cells / serialSec);
    std::printf("  %u jobs: %.3f s  (%.1f cells/s)  speedup %.2fx\n",
                jobs, parallelSec, cells / parallelSec, speedup);
    std::printf("  results identical: %s, TSV byte-identical: %s\n",
                resultsIdentical ? "yes" : "NO",
                tsvIdentical ? "yes" : "NO");
    std::printf("  wrote BENCH_sweep.json\n");

    if (!resultsIdentical || !tsvIdentical) {
        std::fprintf(stderr,
                     "FAIL: parallel sweep diverged from serial\n");
        return 1;
    }
    return 0;
}
