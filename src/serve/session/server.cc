#include "serve/session/server.hh"

#include <chrono>

namespace laperm {
namespace serve {

Server::Server(SessionOptions opts, LineHandler &handler)
    : opts_(std::move(opts)), handler_(handler)
{
}

Server::~Server()
{
    stop();
}

bool
Server::start(std::string &err)
{
    listener_ = listenOn(opts_.endpoint, opts_.backlog, err);
    if (!listener_)
        return false;
    handler_.setShutdownHook([this] { requestShutdown(); });
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

bool
Server::waitShutdown(std::uint64_t ms)
{
    std::unique_lock<std::mutex> lock(mu_);
    if (ms == 0) {
        shutdownCv_.wait(lock, [&] { return shutdownRequested_; });
        return true;
    }
    return shutdownCv_.wait_for(lock, std::chrono::milliseconds(ms),
                                [&] { return shutdownRequested_; });
}

void
Server::requestShutdown()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutdownRequested_ = true;
    }
    shutdownCv_.notify_all();
}

const Endpoint &
Server::boundEndpoint() const
{
    return listener_ ? listener_->boundEndpoint() : opts_.endpoint;
}

void
Server::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopped_)
            return;
        stopped_ = true;
        shutdownRequested_ = true;
    }
    shutdownCv_.notify_all();

    if (listener_)
        listener_->wake();
    if (acceptThread_.joinable())
        acceptThread_.join();
    listener_.reset(); // closes the socket, unlinks a Unix path

    // Unblock live connection readers; splice the nodes out (list
    // iterators held by connection epilogues stay valid across splice)
    // and join. Destroying the nodes afterwards closes the sockets, so
    // a fd is never closed before its thread has been joined.
    std::list<Conn> doomed;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (Conn &c : conns_)
            c.connection->shutdownBoth();
        doomed.splice(doomed.begin(), conns_);
    }
    for (Conn &c : doomed) {
        if (c.thread.joinable())
            c.thread.join();
    }
}

void
Server::acceptLoop()
{
    for (;;) {
        std::unique_ptr<Connection> conn = listener_->accept();
        const bool exiting = conn == nullptr; // woken or fatal error

        // Reap connections that have since finished, so a long-lived
        // daemon holds nodes for LIVE connections only — not one per
        // connection ever accepted. Joining happens outside the lock.
        std::list<Conn> finished;
        std::list<Conn>::iterator slot;
        bool haveSlot = false;
        {
            std::lock_guard<std::mutex> lock(mu_);
            for (auto it = conns_.begin(); it != conns_.end();) {
                auto cur = it++;
                if (cur->finished)
                    finished.splice(finished.begin(), conns_, cur);
            }
            if (!exiting) {
                conns_.emplace_back();
                slot = std::prev(conns_.end());
                slot->connection = std::move(conn);
                haveSlot = true;
            }
        }
        for (Conn &c : finished) {
            if (c.thread.joinable())
                c.thread.join();
        }
        if (exiting)
            return; // stop() shuts down and joins the rest
        if (haveSlot) {
            slot->thread = std::thread(
                [this, c = slot->connection.get(), slot] {
                    handleConnection(*c, slot);
                });
        }
    }
}

void
Server::handleConnection(Connection &conn,
                         std::list<Conn>::iterator slot)
{
    std::string line;
    while (conn.readLine(line)) {
        const std::string response = handler_.handleLine(line);
        if (!conn.writeAll(response + "\n"))
            break;
    }
    // Only the flag is touched here: the node (and with it the socket)
    // is destroyed by the reaper after this thread has been joined.
    std::lock_guard<std::mutex> lock(mu_);
    slot->finished = true;
}

} // namespace serve
} // namespace laperm
