#include "serve/cluster/supervisor.hh"

#include <cstdio>
#include <cstdlib>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace laperm {
namespace serve {

Endpoint
workerEndpoint(const Endpoint &publicEndpoint, std::size_t idx)
{
    if (publicEndpoint.kind == Endpoint::Kind::Unix) {
        return Endpoint::unixAt(publicEndpoint.path + ".w" +
                                std::to_string(idx));
    }
    return Endpoint::tcpAt(
        "127.0.0.1",
        static_cast<std::uint16_t>(publicEndpoint.port + 1 + idx));
}

Supervisor::Supervisor(SupervisorOptions opts) : opts_(std::move(opts))
{
    for (std::size_t i = 0; i < opts_.workers; ++i) {
        endpoints_.push_back(workerEndpoint(opts_.publicEndpoint, i));
        pids_.push_back(-1);
    }
}

bool
Supervisor::spawn(std::size_t idx, std::string &err)
{
    std::vector<std::string> args;
    args.push_back(opts_.exePath);
    args.push_back("--listen");
    args.push_back(endpoints_[idx].toString());
    for (const std::string &a : opts_.workerArgs)
        args.push_back(a);

    std::vector<char *> argv;
    for (std::string &a : args)
        argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        err = "fork failed for worker " + std::to_string(idx);
        return false;
    }
    if (pid == 0) {
        // Child: become a plain single-process daemon. exec, never
        // run on — the parent holds locks and threads fork() does not
        // replicate safely.
        ::execv(argv[0], argv.data());
        std::perror("laperm_served: execv");
        ::_exit(127);
    }
    pids_[idx] = pid;
    std::printf("laperm_served worker %zu pid %ld listening on %s\n",
                idx, static_cast<long>(pid),
                endpoints_[idx].toString().c_str());
    std::fflush(stdout);
    return true;
}

bool
Supervisor::startAll(std::string &err)
{
    for (std::size_t i = 0; i < pids_.size(); ++i) {
        if (!spawn(i, err))
            return false;
    }
    return true;
}

void
Supervisor::pollRespawn()
{
    for (std::size_t i = 0; i < pids_.size(); ++i) {
        if (pids_[i] < 0)
            continue;
        int status = 0;
        const pid_t r = ::waitpid(pids_[i], &status, WNOHANG);
        if (r != pids_[i])
            continue;
        pids_[i] = -1;
        std::string err;
        if (!spawn(i, err)) {
            std::fprintf(stderr, "laperm_served: %s\n", err.c_str());
        }
    }
}

void
Supervisor::stopAll()
{
    for (std::size_t i = 0; i < pids_.size(); ++i) {
        if (pids_[i] >= 0)
            ::kill(pids_[i], SIGTERM);
    }
    for (std::size_t i = 0; i < pids_.size(); ++i) {
        if (pids_[i] < 0)
            continue;
        int status = 0;
        ::waitpid(pids_[i], &status, 0);
        pids_[i] = -1;
    }
}

} // namespace serve
} // namespace laperm
